//! Serving-layer statistics: queue depth, lag, and per-kind latency
//! histograms.
//!
//! All rate math follows the store's stats conventions: additions saturate
//! (a pinned counter degrades, never panics), and every ratio renders `0%`
//! when its denominator is zero — an idle server's report contains no NaN.

use std::fmt;

/// Number of power-of-two latency buckets: bucket `i` counts samples with
/// `latency_us < 2^i`, the last bucket collects everything larger
/// (≈ 35 minutes and up).
const BUCKETS: usize = 32;

/// A fixed-size power-of-two latency histogram over microseconds.
///
/// Recording is O(1), merging is element-wise, and percentiles are answered
/// as the upper bound of the bucket containing the requested rank — exact
/// enough for an operator report, with no allocation anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one sample in microseconds.
    pub fn record(&mut self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.total_us = self.total_us.saturating_add(micros);
        self.max_us = self.max_us.max(micros);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in microseconds (0 when empty — never NaN).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper bound (µs) of the bucket holding the `p`-quantile sample
    /// (`p` in `[0, 1]`, clamped). 0 when empty.
    #[must_use]
    pub fn quantile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                // Bucket i holds samples < 2^i µs (i == 0 holds 0 µs).
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_us
    }

    /// Merge another histogram into this one (element-wise, saturating).
    pub fn accumulate(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "idle");
        }
        write!(
            f,
            "n={}, mean {:.0} µs, p50 <{} µs, p99 <{} µs, max {} µs",
            self.count,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.max_us,
        )
    }
}

/// One snapshot of a serving front end's statistics, as returned by
/// `ServerHandle::stats` and folded into `VStore::stats_report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeStats {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Capacity of the bounded request queue.
    pub queue_capacity: usize,
    /// Requests waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub peak_queue_depth: usize,
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// Requests fully executed (success or error response).
    pub completed: u64,
    /// Requests shed with `Busy` because the queue was full.
    pub rejected_busy: u64,
    /// Completed requests whose response was an error.
    pub failed: u64,
    /// Worker panics converted into error responses (the server survived).
    pub panics: u64,
    /// Responses dropped because the client disconnected mid-stream.
    pub disconnects: u64,
    /// Time requests spent waiting in the queue (lag).
    pub queue_wait: LatencyHistogram,
    /// Execution latency of ingest requests.
    pub ingest_latency: LatencyHistogram,
    /// Execution latency of query requests.
    pub query_latency: LatencyHistogram,
    /// Execution latency of erode requests.
    pub erode_latency: LatencyHistogram,
}

impl ServeStats {
    /// Fraction of submission attempts shed with `Busy` (0.0 when idle —
    /// never NaN).
    #[must_use]
    pub fn busy_rate(&self) -> f64 {
        let attempts = self.submitted.saturating_add(self.rejected_busy);
        if attempts == 0 {
            0.0
        } else {
            self.rejected_busy as f64 / attempts as f64
        }
    }

    /// Fraction of completed requests that returned an error (0.0 when
    /// idle — never NaN).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.failed as f64 / self.completed as f64
        }
    }

    /// Merge another server's snapshot into this one (multi-server
    /// aggregate for `VStore::stats_report`). Depths and capacities add;
    /// histograms merge.
    pub fn accumulate(&mut self, other: &ServeStats) {
        self.workers = self.workers.saturating_add(other.workers);
        self.queue_capacity = self.queue_capacity.saturating_add(other.queue_capacity);
        self.queue_depth = self.queue_depth.saturating_add(other.queue_depth);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.submitted = self.submitted.saturating_add(other.submitted);
        self.completed = self.completed.saturating_add(other.completed);
        self.rejected_busy = self.rejected_busy.saturating_add(other.rejected_busy);
        self.failed = self.failed.saturating_add(other.failed);
        self.panics = self.panics.saturating_add(other.panics);
        self.disconnects = self.disconnects.saturating_add(other.disconnects);
        self.queue_wait.accumulate(&other.queue_wait);
        self.ingest_latency.accumulate(&other.ingest_latency);
        self.query_latency.accumulate(&other.query_latency);
        self.erode_latency.accumulate(&other.erode_latency);
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} workers, queue {}/{} (peak {}), {} submitted, {} completed, \
             {} busy ({:.0}%), {} failed ({:.0}%), {} panics, {} disconnects",
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.peak_queue_depth,
            self.submitted,
            self.completed,
            self.rejected_busy,
            self.busy_rate() * 100.0,
            self.failed,
            self.failure_rate() * 100.0,
            self.panics,
            self.disconnects,
        )?;
        writeln!(f, "  queue wait: {}", self.queue_wait)?;
        writeln!(f, "  ingest:     {}", self.ingest_latency)?;
        writeln!(f, "  query:      {}", self.query_latency)?;
        write!(f, "  erode:      {}", self.erode_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_answers_quantiles() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile_us(0.99), 0);
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 100_000);
        assert!(h.mean_us() > 0.0);
        // p50 falls in a small bucket, p99 near the top sample.
        assert!(h.quantile_us(0.5) <= 128);
        assert!(h.quantile_us(0.99) >= 100_000 / 2);
        assert!(h.quantile_us(1.0) >= h.quantile_us(0.5));
    }

    #[test]
    fn histogram_merge_is_element_wise_and_saturating() {
        let mut a = LatencyHistogram::default();
        a.record(10);
        let mut b = LatencyHistogram::default();
        b.record(1000);
        b.count = u64::MAX; // pinned counter must not wrap the merge
        a.accumulate(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.max_us(), 1000);
    }

    /// The empty and saturated cases of the serving report: 0% everywhere
    /// when idle (no NaN), graceful saturation at the counter limits.
    #[test]
    fn stats_display_handles_empty_and_saturated_counters() {
        let empty = ServeStats::default();
        assert_eq!(empty.busy_rate(), 0.0);
        assert_eq!(empty.failure_rate(), 0.0);
        let rendered = empty.to_string();
        assert!(rendered.contains("(0%)"), "{rendered}");
        assert!(rendered.contains("idle"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");

        let mut saturated = ServeStats {
            submitted: u64::MAX,
            completed: u64::MAX,
            rejected_busy: u64::MAX,
            failed: 1,
            ..ServeStats::default()
        };
        let rendered = saturated.to_string();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(saturated.busy_rate() > 0.0 && saturated.busy_rate() <= 1.0);
        let other = saturated.clone();
        saturated.accumulate(&other);
        assert_eq!(saturated.submitted, u64::MAX, "accumulate must saturate");
    }

    #[test]
    fn accumulate_merges_across_servers() {
        let mut a = ServeStats {
            workers: 2,
            queue_capacity: 4,
            submitted: 10,
            completed: 9,
            ..ServeStats::default()
        };
        let b = ServeStats {
            workers: 3,
            queue_capacity: 8,
            submitted: 5,
            completed: 5,
            peak_queue_depth: 7,
            ..ServeStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.workers, 5);
        assert_eq!(a.queue_capacity, 12);
        assert_eq!(a.submitted, 15);
        assert_eq!(a.peak_queue_depth, 7);
    }
}
