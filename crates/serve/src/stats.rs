//! Serving-layer statistics: queue depth, lag, and per-kind latency
//! histograms.
//!
//! All rate math follows the store's stats conventions: additions saturate
//! (a pinned counter degrades, never panics), and every ratio renders `0%`
//! when its denominator is zero — an idle server's report contains no NaN.

use std::fmt;

// The histogram itself lives in `vstore_types` so the storage tiering
// subsystem can record cold-hit latency with the exact same machinery;
// re-exported here so serving-layer callers keep their import path.
pub use vstore_types::LatencyHistogram;

/// One snapshot of a serving front end's statistics, as returned by
/// `ServerHandle::stats` and folded into `VStore::stats_report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeStats {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Capacity of the bounded request queue.
    pub queue_capacity: usize,
    /// Requests waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub peak_queue_depth: usize,
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// Requests fully executed (success or error response).
    pub completed: u64,
    /// Requests shed with `Busy` because the queue was full.
    pub rejected_busy: u64,
    /// Completed requests whose response was an error.
    pub failed: u64,
    /// Worker panics converted into error responses (the server survived).
    pub panics: u64,
    /// Responses dropped because the client disconnected mid-stream.
    pub disconnects: u64,
    /// Time requests spent waiting in the queue (lag).
    pub queue_wait: LatencyHistogram,
    /// Execution latency of ingest requests.
    pub ingest_latency: LatencyHistogram,
    /// Execution latency of query requests.
    pub query_latency: LatencyHistogram,
    /// Execution latency of erode requests.
    pub erode_latency: LatencyHistogram,
    /// Execution latency of live-stats requests.
    pub live_stats_latency: LatencyHistogram,
}

impl ServeStats {
    /// Fraction of submission attempts shed with `Busy` (0.0 when idle —
    /// never NaN).
    #[must_use]
    pub fn busy_rate(&self) -> f64 {
        let attempts = self.submitted.saturating_add(self.rejected_busy);
        if attempts == 0 {
            0.0
        } else {
            self.rejected_busy as f64 / attempts as f64
        }
    }

    /// Fraction of completed requests that returned an error (0.0 when
    /// idle — never NaN).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.failed as f64 / self.completed as f64
        }
    }

    /// Merge another server's snapshot into this one (multi-server
    /// aggregate for `VStore::stats_report`). Depths and capacities add;
    /// histograms merge.
    pub fn accumulate(&mut self, other: &ServeStats) {
        self.workers = self.workers.saturating_add(other.workers);
        self.queue_capacity = self.queue_capacity.saturating_add(other.queue_capacity);
        self.queue_depth = self.queue_depth.saturating_add(other.queue_depth);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.submitted = self.submitted.saturating_add(other.submitted);
        self.completed = self.completed.saturating_add(other.completed);
        self.rejected_busy = self.rejected_busy.saturating_add(other.rejected_busy);
        self.failed = self.failed.saturating_add(other.failed);
        self.panics = self.panics.saturating_add(other.panics);
        self.disconnects = self.disconnects.saturating_add(other.disconnects);
        self.queue_wait.accumulate(&other.queue_wait);
        self.ingest_latency.accumulate(&other.ingest_latency);
        self.query_latency.accumulate(&other.query_latency);
        self.erode_latency.accumulate(&other.erode_latency);
        self.live_stats_latency
            .accumulate(&other.live_stats_latency);
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} workers, queue {}/{} (peak {}), {} submitted, {} completed, \
             {} busy ({:.0}%), {} failed ({:.0}%), {} panics, {} disconnects",
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.peak_queue_depth,
            self.submitted,
            self.completed,
            self.rejected_busy,
            self.busy_rate() * 100.0,
            self.failed,
            self.failure_rate() * 100.0,
            self.panics,
            self.disconnects,
        )?;
        writeln!(f, "  queue wait: {}", self.queue_wait)?;
        writeln!(f, "  ingest:     {}", self.ingest_latency)?;
        writeln!(f, "  query:      {}", self.query_latency)?;
        write!(f, "  erode:      {}", self.erode_latency)?;
        if !self.live_stats_latency.is_empty() {
            write!(f, "\n  live-stats: {}", self.live_stats_latency)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The empty and saturated cases of the serving report: 0% everywhere
    /// when idle (no NaN), graceful saturation at the counter limits.
    #[test]
    fn stats_display_handles_empty_and_saturated_counters() {
        let empty = ServeStats::default();
        assert_eq!(empty.busy_rate(), 0.0);
        assert_eq!(empty.failure_rate(), 0.0);
        let rendered = empty.to_string();
        assert!(rendered.contains("(0%)"), "{rendered}");
        assert!(rendered.contains("idle"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");

        let mut saturated = ServeStats {
            submitted: u64::MAX,
            completed: u64::MAX,
            rejected_busy: u64::MAX,
            failed: 1,
            ..ServeStats::default()
        };
        let rendered = saturated.to_string();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(saturated.busy_rate() > 0.0 && saturated.busy_rate() <= 1.0);
        let other = saturated.clone();
        saturated.accumulate(&other);
        assert_eq!(saturated.submitted, u64::MAX, "accumulate must saturate");
    }

    #[test]
    fn accumulate_merges_across_servers() {
        let mut a = ServeStats {
            workers: 2,
            queue_capacity: 4,
            submitted: 10,
            completed: 9,
            ..ServeStats::default()
        };
        let b = ServeStats {
            workers: 3,
            queue_capacity: 8,
            submitted: 5,
            completed: 5,
            peak_queue_depth: 7,
            ..ServeStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.workers, 5);
        assert_eq!(a.queue_capacity, 12);
        assert_eq!(a.submitted, 15);
        assert_eq!(a.peak_queue_depth, 7);
    }
}
