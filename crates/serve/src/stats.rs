//! Serving-layer statistics: queue depth, lag, and per-kind latency
//! histograms.
//!
//! All rate math follows the store's stats conventions: additions saturate
//! (a pinned counter degrades, never panics), and every ratio renders `0%`
//! when its denominator is zero — an idle server's report contains no NaN.

use std::fmt;

// The histogram itself lives in `vstore_types` so the storage tiering
// subsystem can record cold-hit latency with the exact same machinery;
// re-exported here so serving-layer callers keep their import path.
pub use vstore_types::LatencyHistogram;

/// One snapshot of a serving front end's statistics, as returned by
/// `ServerHandle::stats` and folded into `VStore::stats_report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeStats {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Capacity of the bounded request queue.
    pub queue_capacity: usize,
    /// Requests waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub peak_queue_depth: usize,
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// Requests fully executed (success or error response).
    pub completed: u64,
    /// Requests shed with `Busy` because the queue was full.
    pub rejected_busy: u64,
    /// Completed requests whose response was an error.
    pub failed: u64,
    /// Worker panics converted into error responses (the server survived).
    pub panics: u64,
    /// Responses dropped because the client disconnected mid-stream.
    pub disconnects: u64,
    /// Time requests spent waiting in the queue (lag).
    pub queue_wait: LatencyHistogram,
    /// Execution latency of ingest requests.
    pub ingest_latency: LatencyHistogram,
    /// Execution latency of query requests.
    pub query_latency: LatencyHistogram,
    /// Execution latency of erode requests.
    pub erode_latency: LatencyHistogram,
    /// Execution latency of live-stats requests.
    pub live_stats_latency: LatencyHistogram,
    /// Execution latency of net-stats requests.
    pub net_stats_latency: LatencyHistogram,
    /// Execution latency of metrics-snapshot requests.
    pub metrics_latency: LatencyHistogram,
    /// Execution latency of trace-dump requests.
    pub trace_latency: LatencyHistogram,
}

impl ServeStats {
    /// Fraction of submission attempts shed with `Busy` (0.0 when idle —
    /// never NaN).
    #[must_use]
    pub fn busy_rate(&self) -> f64 {
        let attempts = self.submitted.saturating_add(self.rejected_busy);
        if attempts == 0 {
            0.0
        } else {
            self.rejected_busy as f64 / attempts as f64
        }
    }

    /// Fraction of completed requests that returned an error (0.0 when
    /// idle — never NaN).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.failed as f64 / self.completed as f64
        }
    }

    /// Merge another server's snapshot into this one (multi-server
    /// aggregate for `VStore::stats_report`). Depths and capacities add;
    /// histograms merge.
    pub fn accumulate(&mut self, other: &ServeStats) {
        self.workers = self.workers.saturating_add(other.workers);
        self.queue_capacity = self.queue_capacity.saturating_add(other.queue_capacity);
        self.queue_depth = self.queue_depth.saturating_add(other.queue_depth);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.submitted = self.submitted.saturating_add(other.submitted);
        self.completed = self.completed.saturating_add(other.completed);
        self.rejected_busy = self.rejected_busy.saturating_add(other.rejected_busy);
        self.failed = self.failed.saturating_add(other.failed);
        self.panics = self.panics.saturating_add(other.panics);
        self.disconnects = self.disconnects.saturating_add(other.disconnects);
        self.queue_wait.accumulate(&other.queue_wait);
        self.ingest_latency.accumulate(&other.ingest_latency);
        self.query_latency.accumulate(&other.query_latency);
        self.erode_latency.accumulate(&other.erode_latency);
        self.live_stats_latency
            .accumulate(&other.live_stats_latency);
        self.net_stats_latency.accumulate(&other.net_stats_latency);
        self.metrics_latency.accumulate(&other.metrics_latency);
        self.trace_latency.accumulate(&other.trace_latency);
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} workers, queue {}/{} (peak {}), {} submitted, {} completed, \
             {} busy ({:.0}%), {} failed ({:.0}%), {} panics, {} disconnects",
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.peak_queue_depth,
            self.submitted,
            self.completed,
            self.rejected_busy,
            self.busy_rate() * 100.0,
            self.failed,
            self.failure_rate() * 100.0,
            self.panics,
            self.disconnects,
        )?;
        writeln!(f, "  queue wait: {}", self.queue_wait)?;
        writeln!(f, "  ingest:     {}", self.ingest_latency)?;
        writeln!(f, "  query:      {}", self.query_latency)?;
        write!(f, "  erode:      {}", self.erode_latency)?;
        if !self.live_stats_latency.is_empty() {
            write!(f, "\n  live-stats: {}", self.live_stats_latency)?;
        }
        if !self.net_stats_latency.is_empty() {
            write!(f, "\n  net-stats:  {}", self.net_stats_latency)?;
        }
        if !self.metrics_latency.is_empty() {
            write!(f, "\n  metrics:    {}", self.metrics_latency)?;
        }
        if !self.trace_latency.is_empty() {
            write!(f, "\n  trace-dump: {}", self.trace_latency)?;
        }
        Ok(())
    }
}

/// One snapshot of a socket front end's statistics, as returned by
/// `NetServerHandle::stats` and folded into `VStore::stats_report`.
///
/// The two histograms abuse [`LatencyHistogram`]'s power-of-two buckets
/// for dimensionless counts: `batch_sizes` records **responses per
/// vectored write** (the batching win — mean ≫ 1 means syscalls are being
/// amortised) and `backlog_peaks` records each closed connection's peak
/// in-flight request count (how deeply clients actually pipelined).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetStats {
    /// Event-loop threads multiplexing the connections.
    pub event_loops: usize,
    /// Connections accepted over the listener's lifetime.
    pub accepted: u64,
    /// Connections refused because `NetOptions::max_connections` was
    /// reached (closed immediately, nothing served).
    pub refused: u64,
    /// Connections currently being served.
    pub active_connections: usize,
    /// Request frames decoded off sockets.
    pub frames_in: u64,
    /// Response frames fully written back (batched or not).
    pub frames_out: u64,
    /// Payload bytes read off sockets (frame envelopes included).
    pub bytes_in: u64,
    /// Bytes written back to sockets.
    pub bytes_out: u64,
    /// Frames rejected as undecodable (bad magic, bad payload, trailing
    /// garbage). Each one costs its connection — the peer is answered with
    /// a corruption error where possible, then isolated.
    pub corrupt_frames: u64,
    /// Frames rejected at header-parse time for declaring a length beyond
    /// `NetOptions::max_frame_bytes` — before any allocation.
    pub oversized_frames: u64,
    /// Connections that vanished (EOF or socket error) with work still in
    /// flight or responses still queued.
    pub disconnects: u64,
    /// Successful `writev` calls issued (one per response batch).
    pub write_syscalls: u64,
    /// Buffer-pool takes served from the pool (no allocation).
    pub pool_hits: u64,
    /// Buffer-pool takes that had to allocate a fresh buffer.
    pub pool_misses: u64,
    /// Responses coalesced per vectored write.
    pub batch_sizes: LatencyHistogram,
    /// Peak in-flight requests per connection, recorded at close.
    pub backlog_peaks: LatencyHistogram,
}

impl NetStats {
    /// Fraction of buffer takes served from the pool without allocating
    /// (0.0 when idle — never NaN). The steady-state read/write path keeps
    /// this near 1.0: the pool is the proof that serving a request
    /// allocates nothing per-request.
    #[must_use]
    pub fn pool_hit_rate(&self) -> f64 {
        let takes = self.pool_hits.saturating_add(self.pool_misses);
        if takes == 0 {
            0.0
        } else {
            self.pool_hits as f64 / takes as f64
        }
    }

    /// Mean responses per vectored write (0.0 when idle — never NaN).
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        self.batch_sizes.mean_us()
    }

    /// Write syscalls per response frame (0.0 when idle — never NaN).
    /// Batching pushes this below 1.0; a naive one-write-per-response loop
    /// sits at 1.0.
    #[must_use]
    pub fn writes_per_response(&self) -> f64 {
        if self.frames_out == 0 {
            0.0
        } else {
            self.write_syscalls as f64 / self.frames_out as f64
        }
    }

    /// Merge another front end's snapshot into this one (multi-server
    /// aggregate for `VStore::stats_report`). Capacities add; histograms
    /// merge.
    pub fn accumulate(&mut self, other: &NetStats) {
        self.event_loops = self.event_loops.saturating_add(other.event_loops);
        self.accepted = self.accepted.saturating_add(other.accepted);
        self.refused = self.refused.saturating_add(other.refused);
        self.active_connections = self
            .active_connections
            .saturating_add(other.active_connections);
        self.frames_in = self.frames_in.saturating_add(other.frames_in);
        self.frames_out = self.frames_out.saturating_add(other.frames_out);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.bytes_out = self.bytes_out.saturating_add(other.bytes_out);
        self.corrupt_frames = self.corrupt_frames.saturating_add(other.corrupt_frames);
        self.oversized_frames = self.oversized_frames.saturating_add(other.oversized_frames);
        self.disconnects = self.disconnects.saturating_add(other.disconnects);
        self.write_syscalls = self.write_syscalls.saturating_add(other.write_syscalls);
        self.pool_hits = self.pool_hits.saturating_add(other.pool_hits);
        self.pool_misses = self.pool_misses.saturating_add(other.pool_misses);
        self.batch_sizes.accumulate(&other.batch_sizes);
        self.backlog_peaks.accumulate(&other.backlog_peaks);
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "net: {} event loops, {} active conns ({} accepted, {} refused, {} disconnects), \
             {} frames in / {} out, {} in / {} out",
            self.event_loops,
            self.active_connections,
            self.accepted,
            self.refused,
            self.disconnects,
            self.frames_in,
            self.frames_out,
            vstore_types::ByteSize(self.bytes_in),
            vstore_types::ByteSize(self.bytes_out),
        )?;
        writeln!(
            f,
            "  frames: {} corrupt, {} oversized | pool hit rate {:.0}% ({} hits, {} misses)",
            self.corrupt_frames,
            self.oversized_frames,
            self.pool_hit_rate() * 100.0,
            self.pool_hits,
            self.pool_misses,
        )?;
        write!(
            f,
            "  writes: {} syscalls ({:.2} per response), mean batch {:.1}",
            self.write_syscalls,
            self.writes_per_response(),
            self.mean_batch(),
        )?;
        if !self.backlog_peaks.is_empty() {
            write!(
                f,
                " | conn backlog peak p50 <{}, max {}",
                self.backlog_peaks.quantile_us(0.50),
                self.backlog_peaks.max_us(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The empty and saturated cases of the serving report: 0% everywhere
    /// when idle (no NaN), graceful saturation at the counter limits.
    #[test]
    fn stats_display_handles_empty_and_saturated_counters() {
        let empty = ServeStats::default();
        assert_eq!(empty.busy_rate(), 0.0);
        assert_eq!(empty.failure_rate(), 0.0);
        let rendered = empty.to_string();
        assert!(rendered.contains("(0%)"), "{rendered}");
        assert!(rendered.contains("idle"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");

        let mut saturated = ServeStats {
            submitted: u64::MAX,
            completed: u64::MAX,
            rejected_busy: u64::MAX,
            failed: 1,
            ..ServeStats::default()
        };
        let rendered = saturated.to_string();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(saturated.busy_rate() > 0.0 && saturated.busy_rate() <= 1.0);
        let other = saturated.clone();
        saturated.accumulate(&other);
        assert_eq!(saturated.submitted, u64::MAX, "accumulate must saturate");
    }

    #[test]
    fn net_stats_rates_never_nan_and_accumulate_merges() {
        let idle = NetStats::default();
        assert_eq!(idle.pool_hit_rate(), 0.0);
        assert_eq!(idle.mean_batch(), 0.0);
        assert_eq!(idle.writes_per_response(), 0.0);
        let rendered = idle.to_string();
        assert!(!rendered.contains("NaN"), "{rendered}");

        let mut a = NetStats {
            event_loops: 2,
            accepted: 10,
            frames_out: 100,
            write_syscalls: 25,
            pool_hits: 90,
            pool_misses: 10,
            ..NetStats::default()
        };
        a.batch_sizes.record(4);
        assert!((a.writes_per_response() - 0.25).abs() < 1e-9);
        assert!((a.pool_hit_rate() - 0.9).abs() < 1e-9);
        assert!((a.mean_batch() - 4.0).abs() < 1e-9);
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.event_loops, 4);
        assert_eq!(a.accepted, 20);
        assert_eq!(a.batch_sizes.count(), 2);
        // Saturation instead of wraparound.
        let mut pinned = NetStats {
            frames_in: u64::MAX,
            ..NetStats::default()
        };
        pinned.accumulate(&b);
        assert_eq!(pinned.frames_in, u64::MAX);
    }

    #[test]
    fn accumulate_merges_across_servers() {
        let mut a = ServeStats {
            workers: 2,
            queue_capacity: 4,
            submitted: 10,
            completed: 9,
            ..ServeStats::default()
        };
        let b = ServeStats {
            workers: 3,
            queue_capacity: 8,
            submitted: 5,
            completed: 5,
            peak_queue_depth: 7,
            ..ServeStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.workers, 5);
        assert_eq!(a.queue_capacity, 12);
        assert_eq!(a.submitted, 15);
        assert_eq!(a.peak_queue_depth, 7);
    }
}
