//! Per-connection machinery of the socket front end: the transport frame
//! envelope, the recycled buffer pool, and the state machine that turns
//! non-blocking socket bytes into queue submissions and batched vectored
//! writes.
//!
//! ## Transport envelope (wire v4)
//!
//! ```text
//! ┌───────────────┬─────────────────────┬─────────────────────────────┐
//! │ u32 frame_len │ u64 correlation_id  │ payload (ServeRequest /     │
//! │ (little-end.) │ (little-endian)     │  ServeResponse wire bytes)  │
//! └───────────────┴─────────────────────┴─────────────────────────────┘
//! ```
//!
//! `frame_len` counts everything after itself (correlation id + payload).
//! The correlation id is transport-level: a client may pipeline any number
//! of requests on one connection; the server answers in completion order,
//! echoing each request's id on its response frame so the client can pair
//! them back up. The payload inside the envelope is the ordinary
//! [`ServeRequest`]/[`ServeResponse`] wire frame — parity with the
//! in-process path is therefore byte-exact modulo the envelope.
//!
//! ## Zero per-request allocation
//!
//! Steady state allocates nothing per request: the inbox (unparsed read
//! bytes) and every response frame are encoded into buffers taken from the
//! shared [`BufferPool`] and returned after the write completes, and the
//! read syscall lands in an event-loop-owned scratch buffer. A declared
//! frame length is validated against `NetOptions::max_frame_bytes` **at
//! header-parse time** — buffers only ever hold bytes actually received,
//! so a hostile length prefix never drives an allocation.

use crate::net::NetShared;
use crate::server::Connection;
use crate::wire::{RemoteError, ServeRequest, ServeResponse};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::TcpStream;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vstore_codec::wire::ByteWriter;
use vstore_obs::Tracer;
use vstore_sim::sync::lock_unpoisoned;
use vstore_types::cast::usize_from_u32;

/// Bytes of the transport header: u32 length + u64 correlation id.
pub(crate) const FRAME_HEADER_BYTES: usize = 12;
/// Bytes of the correlation id inside the declared length.
pub(crate) const CORR_ID_BYTES: usize = 8;
/// Most frames coalesced into one vectored write.
const MAX_WRITE_BATCH: usize = 64;

/// Encode one frame into a recycled buffer: header, correlation id, then
/// the payload via `encode`, with the length back-patched once known.
pub(crate) fn encode_frame(
    buf: Vec<u8>,
    corr_id: u64,
    encode: impl FnOnce(&mut ByteWriter),
) -> Vec<u8> {
    let mut w = ByteWriter::from_vec(buf);
    w.put_u32(0);
    w.put_u64(corr_id);
    encode(&mut w);
    let len = u32::try_from(w.len() - 4).expect("frame length fits u32 by max_frame_bytes"); // vstore-lint: allow(no-unwrap)
    w.patch_u32(0, len);
    w.into_bytes()
}

/// Why a buffered byte stream cannot continue as frames.
#[derive(Debug)]
pub(crate) enum FrameError {
    /// The declared length exceeds the configured cap. Rejected before any
    /// allocation; the stream cannot be re-synchronised.
    Oversized {
        /// The length the header declared.
        declared: usize,
    },
    /// The declared length cannot hold even the correlation id.
    Malformed {
        /// The length the header declared.
        declared: usize,
    },
}

/// One step of frame extraction from a buffered byte stream.
pub(crate) enum FrameStep {
    /// Not enough bytes buffered for the next frame yet.
    Incomplete,
    /// One complete frame: its correlation id, the payload's byte range
    /// inside the buffer, and how many buffered bytes the frame spans.
    Frame {
        corr_id: u64,
        payload: Range<usize>,
        spans: usize,
    },
}

/// Try to extract the next frame from `buf`. The declared length is
/// checked against `max_payload_bytes` **before** it influences anything —
/// rejection costs no allocation (see the module docs).
pub(crate) fn parse_frame(
    buf: &[u8],
    max_payload_bytes: usize,
) -> std::result::Result<FrameStep, FrameError> {
    if buf.len() < 4 {
        return Ok(FrameStep::Incomplete);
    }
    // vstore-lint: allow(no-unwrap, checked-cast) — length checked above; u32 widens to usize
    let declared = usize_from_u32(u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")));
    if declared < CORR_ID_BYTES {
        return Err(FrameError::Malformed { declared });
    }
    if declared - CORR_ID_BYTES > max_payload_bytes {
        return Err(FrameError::Oversized { declared });
    }
    let spans = 4 + declared;
    if buf.len() < spans {
        return Ok(FrameStep::Incomplete);
    }
    let corr_id = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes")); // vstore-lint: allow(no-unwrap) — declared >= CORR_ID_BYTES checked above
    Ok(FrameStep::Frame {
        corr_id,
        payload: FRAME_HEADER_BYTES..spans,
        spans,
    })
}

/// A bounded pool of recycled byte buffers shared by every event loop.
/// `take`/`give` are a short mutex hold; hit/miss counters feed
/// `NetStats::pool_hit_rate` — the observable proof that the steady-state
/// request path allocates nothing per request.
pub(crate) struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    capacity: usize,
    /// Buffers grown past this capacity are dropped instead of pooled, so
    /// a burst of jumbo responses cannot pin `capacity` ×
    /// `max_frame_bytes` of memory indefinitely.
    retain_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool retaining at most `capacity` idle buffers, each of at most
    /// `retain_bytes` capacity.
    pub(crate) fn new(capacity: usize, retain_bytes: usize) -> Self {
        BufferPool {
            bufs: Mutex::new(Vec::new()),
            capacity,
            retain_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Take a cleared buffer, recycling one if available.
    pub(crate) fn take(&self) -> Vec<u8> {
        let recycled = lock_unpoisoned(&self.bufs).pop();
        match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Return a buffer for recycling (dropped if the pool is full or the
    /// buffer has grown past the retention threshold).
    pub(crate) fn give(&self, buf: Vec<u8>) {
        if buf.capacity() > self.retain_bytes {
            return;
        }
        let mut bufs = lock_unpoisoned(&self.bufs);
        if bufs.len() < self.capacity {
            bufs.push(buf);
        }
    }

    /// Takes served without allocating.
    pub(crate) fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Takes that allocated a fresh buffer.
    pub(crate) fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// One encoded response awaiting its turn in a batched write.
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

/// Why a connection left its event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// Everything submitted was answered and flushed; the peer closed (or
    /// the server drained) cleanly.
    Finished,
    /// The peer vanished (EOF or socket error) with work still in flight
    /// or responses still queued.
    Disconnect,
    /// The byte stream became undecodable; the peer was answered with a
    /// corruption error where possible, then cut off.
    Corrupt,
    /// A frame declared a length beyond the cap; cut off immediately.
    Oversized,
}

/// What one `pump` pass decided.
pub(crate) enum PumpOutcome {
    /// Keep the connection; `progress` says whether any byte or response
    /// moved (the loop sleeps only when nothing did).
    Continue { progress: bool },
    /// Remove the connection; the loop calls [`NetConn::finish`].
    Close(CloseReason),
}

/// The per-connection state machine: socket, inbox, in-flight requests
/// and the batched write queue. Owned by exactly one event loop — no
/// locking on any per-connection state.
pub(crate) struct NetConn {
    stream: TcpStream,
    conn: Connection,
    /// The service's request tracer: each decoded frame begins its trace
    /// here, at the socket boundary.
    tracer: Arc<Tracer>,
    /// Queue job id → transport correlation id of each in-flight request.
    in_flight: HashMap<u64, u64>,
    /// Unparsed bytes read off the socket (pooled).
    inbox: Vec<u8>,
    /// Encoded responses not yet fully written (pooled buffers).
    pending: VecDeque<WriteBuf>,
    pending_bytes: usize,
    oldest_pending: Option<Instant>,
    peak_backlog: u64,
    /// Undecodable stream: stop reading, flush what is queued, then close.
    poisoned: bool,
    /// Peer half-closed its write side: no more requests, but keep
    /// answering and flushing what is already in flight.
    eof: bool,
}

impl NetConn {
    pub(crate) fn new(stream: TcpStream, conn: Connection, shared: &NetShared) -> Self {
        NetConn {
            stream,
            tracer: conn.tracer(),
            conn,
            in_flight: HashMap::new(),
            inbox: shared.pool.take(),
            pending: VecDeque::new(),
            pending_bytes: 0,
            oldest_pending: None,
            peak_backlog: 0,
            poisoned: false,
            eof: false,
        }
    }

    /// One multiplexing pass: read what the socket has, decode and submit
    /// complete frames (stamped at decode time), drain completed
    /// responses into the write queue, and flush per the adaptive policy —
    /// immediately when nothing more is imminent, batched by
    /// size/latency threshold while responses are still streaming out.
    pub(crate) fn pump(
        &mut self,
        shared: &NetShared,
        scratch: &mut [u8],
        draining: bool,
    ) -> PumpOutcome {
        let mut progress = false;

        // 1. Read. Skipped while draining (no new work accepted), after
        //    EOF, or once the stream is poisoned.
        if !(draining || self.eof || self.poisoned) {
            loop {
                match self.stream.read(scratch) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        self.inbox.extend_from_slice(&scratch[..n]);
                        shared.add_bytes_in(n as u64);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return PumpOutcome::Close(CloseReason::Disconnect),
                }
            }
        }

        // 2. Decode complete frames and submit them. The lag stamp is
        //    taken here, at decode time, so the queue-wait histogram is
        //    comparable with the in-process submit path.
        let mut consumed = 0usize;
        let mut frames_in = 0u64;
        let mut fatal: Option<CloseReason> = None;
        while !self.poisoned {
            match parse_frame(&self.inbox[consumed..], shared.options.max_frame_bytes) {
                Ok(FrameStep::Incomplete) => break,
                Ok(FrameStep::Frame {
                    corr_id,
                    payload,
                    spans,
                }) => {
                    frames_in += 1;
                    progress = true;
                    let decoded_at = Instant::now();
                    // The trace begins here, at the socket boundary: the
                    // decode below is its first span, and the context rides
                    // the job through queue, worker and engines.
                    let trace = self.tracer.begin("request");
                    let decode_span = trace.span("net.decode");
                    let bytes = &self.inbox[consumed + payload.start..consumed + payload.end];
                    match ServeRequest::from_wire(bytes) {
                        Ok(request) => {
                            drop(decode_span);
                            trace.set_root(request.kind().name());
                            match self.conn.submit_traced(request, decoded_at, trace) {
                                Ok(job_id) => {
                                    self.in_flight.insert(job_id, corr_id);
                                    self.peak_backlog =
                                        self.peak_backlog.max(self.in_flight.len() as u64);
                                }
                                // Shed (Busy) or shutting down: the error
                                // IS the response; the connection lives on.
                                Err(err) => self.queue_response(
                                    shared,
                                    corr_id,
                                    &ServeResponse::Error(RemoteError::from_error(&err)),
                                ),
                            }
                        }
                        Err(err) => {
                            // Undecodable payload: answer this frame with
                            // the typed error, then isolate the peer — a
                            // stream that framed garbage cannot be
                            // trusted for re-synchronisation.
                            shared.count_corrupt_frame();
                            self.queue_response(
                                shared,
                                corr_id,
                                &ServeResponse::Error(RemoteError::from_error(&err)),
                            );
                            self.poisoned = true;
                        }
                    }
                    consumed += spans;
                }
                Err(FrameError::Oversized { .. }) => {
                    shared.count_oversized_frame();
                    fatal = Some(CloseReason::Oversized);
                    break;
                }
                Err(FrameError::Malformed { .. }) => {
                    shared.count_corrupt_frame();
                    fatal = Some(CloseReason::Corrupt);
                    break;
                }
            }
        }
        if consumed > 0 {
            // Compact in place: the inbox keeps its pooled allocation.
            self.inbox.copy_within(consumed.., 0);
            self.inbox.truncate(self.inbox.len() - consumed);
        }
        if frames_in > 0 {
            shared.add_frames_in(frames_in);
        }
        if let Some(reason) = fatal {
            // Best-effort flush of anything already queued, then cut off.
            let _ = self.flush(shared);
            return PumpOutcome::Close(reason);
        }

        // 3. Drain completions into the write queue.
        while let Some((job_id, response)) = self.conn.try_recv() {
            progress = true;
            if let Some(corr_id) = self.in_flight.remove(&job_id) {
                self.queue_response(shared, corr_id, &response);
            }
        }

        // 4. Adaptive flush. With nothing left in flight no further
        //    response can join the batch, so flush immediately (light
        //    load → minimal latency). Otherwise coalesce until the batch
        //    crosses the size threshold or the oldest pending response
        //    has waited its latency bound (heavy pipelining → few large
        //    vectored writes).
        if !self.pending.is_empty() {
            let opts = &shared.options;
            let idle = self.in_flight.is_empty();
            let over_size = self.pending_bytes >= opts.batch_max_bytes;
            let over_delay = self
                .oldest_pending
                .is_some_and(|t| t.elapsed() >= Duration::from_micros(opts.batch_max_delay_us));
            if idle || over_size || over_delay || draining || self.poisoned || self.eof {
                match self.flush(shared) {
                    Ok(wrote) => progress |= wrote,
                    Err(()) => return PumpOutcome::Close(CloseReason::Disconnect),
                }
            }
        }

        // 5. Close when no more work can arrive and everything queued has
        //    been written.
        let settled = self.in_flight.is_empty() && self.pending.is_empty();
        if settled && self.poisoned {
            return PumpOutcome::Close(CloseReason::Corrupt);
        }
        if settled && (self.eof || draining) {
            return PumpOutcome::Close(CloseReason::Finished);
        }
        PumpOutcome::Continue { progress }
    }

    /// Encode `response` into a pooled buffer and queue it for the next
    /// batched write.
    fn queue_response(&mut self, shared: &NetShared, corr_id: u64, response: &ServeResponse) {
        let buf = encode_frame(shared.pool.take(), corr_id, |w| response.write_wire(w));
        self.pending_bytes += buf.len();
        if self.pending.is_empty() {
            self.oldest_pending = Some(Instant::now());
        }
        self.pending.push_back(WriteBuf { buf, pos: 0 });
    }

    /// One vectored write of up to [`MAX_WRITE_BATCH`] pending frames.
    /// Returns whether bytes moved; `Err(())` means the peer is gone.
    fn flush(&mut self, shared: &NetShared) -> std::result::Result<bool, ()> {
        if self.pending.is_empty() {
            return Ok(false);
        }
        // Stack-allocated gather list: the write path allocates nothing.
        let mut slices = [IoSlice::new(&[]); MAX_WRITE_BATCH];
        let batch = self.pending.len().min(MAX_WRITE_BATCH);
        for (slot, w) in slices.iter_mut().zip(self.pending.iter()) {
            *slot = IoSlice::new(&w.buf[w.pos..]);
        }
        let written = loop {
            match self.stream.write_vectored(&slices[..batch]) {
                Ok(0) => return Err(()),
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        };
        // Advance the queue past what the kernel took; completed frames
        // return their buffers to the pool.
        let mut remaining = written;
        let mut completed = 0u64;
        while remaining > 0 {
            // remaining > 0 means the writev above consumed bytes from a
            // frame still queued here.
            let front = self
                .pending
                .front_mut()
                .expect("written bytes imply pending frames"); // vstore-lint: allow(no-unwrap)
            let left = front.buf.len() - front.pos;
            if remaining >= left {
                remaining -= left;
                completed += 1;
                let done = self.pending.pop_front().expect("front exists"); // vstore-lint: allow(no-unwrap)
                shared.pool.give(done.buf);
            } else {
                front.pos += remaining;
                remaining = 0;
            }
        }
        self.pending_bytes -= written;
        // After a partial flush the remaining frames have already waited;
        // keeping the timestamp preserves the batch_max_delay_us bound
        // under sustained partial writes.
        if self.pending.is_empty() {
            self.oldest_pending = None;
        }
        shared.record_write(written as u64, completed);
        Ok(true)
    }

    /// Tear the connection down: recycle its buffers and record its
    /// closing statistics under `reason`.
    pub(crate) fn finish(mut self, shared: &NetShared, reason: CloseReason) {
        let inbox = std::mem::take(&mut self.inbox);
        shared.pool.give(inbox);
        while let Some(w) = self.pending.pop_front() {
            shared.pool.give(w.buf);
        }
        let abandoned = !self.in_flight.is_empty();
        shared.close_connection(reason, self.peak_backlog, abandoned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_envelope() {
        let request = ServeRequest::Erode {
            stream: "jackson".into(),
            age_days: 3,
        };
        let frame = encode_frame(Vec::new(), 77, |w| request.write_wire(w));
        assert_eq!(
            u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize,
            frame.len() - 4
        );
        match parse_frame(&frame, 1 << 20).unwrap() {
            FrameStep::Frame {
                corr_id,
                payload,
                spans,
            } => {
                assert_eq!(corr_id, 77);
                assert_eq!(spans, frame.len());
                assert_eq!(ServeRequest::from_wire(&frame[payload]).unwrap(), request);
            }
            FrameStep::Incomplete => panic!("complete frame not recognised"),
        }
        // Every strict prefix is incomplete, never an error.
        for cut in 0..frame.len() {
            assert!(matches!(
                parse_frame(&frame[..cut], 1 << 20),
                Ok(FrameStep::Incomplete)
            ));
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_at_header_parse_time() {
        // Oversized: declares 256 MiB with only 4 bytes on the wire.
        let mut header = Vec::new();
        header.extend_from_slice(&(256u32 << 20).to_le_bytes());
        assert!(matches!(
            parse_frame(&header, 4 * 1024 * 1024),
            Err(FrameError::Oversized { .. })
        ));
        // Malformed: too short to even carry the correlation id.
        let mut header = Vec::new();
        header.extend_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            parse_frame(&header, 4 * 1024 * 1024),
            Err(FrameError::Malformed { declared: 3 })
        ));
    }

    #[test]
    fn buffer_pool_recycles_and_counts() {
        let pool = BufferPool::new(2, 1024);
        let a = pool.take();
        assert_eq!(pool.miss_count(), 1);
        pool.give(a);
        let b = pool.take();
        assert_eq!(pool.hit_count(), 1);
        pool.give(b);
        pool.give(Vec::new());
        pool.give(Vec::new()); // beyond capacity: dropped silently
        assert_eq!(pool.bufs.lock().unwrap().len(), 2);
    }

    #[test]
    fn buffer_pool_drops_jumbo_buffers() {
        let pool = BufferPool::new(8, 1024);
        pool.give(Vec::with_capacity(4096)); // over retention: not pooled
        assert_eq!(pool.bufs.lock().unwrap().len(), 0);
        pool.give(Vec::with_capacity(512));
        assert_eq!(pool.bufs.lock().unwrap().len(), 1);
    }
}
