//! # vstore-codec
//!
//! The video coding substrate: materialised frames, fidelity degradation,
//! a real block codec with GOP structure (keyframe interval, chunk-skipping
//! decode, RAW bypass), a binary segment container, and the transcoder that
//! converts ingestion-fidelity frames into arbitrary storage formats.
//!
//! The codec genuinely compresses the synthetic block planes (delta + RLE
//! entropy coding), so compression ratios, GOP skipping and RAW bypass are
//! real behaviours, not constants. Throughput numbers reported by
//! experiments, however, come from the calibrated
//! [`CodingCostModel`](vstore_sim::CodingCostModel) — see `DESIGN.md` for the
//! substitution rationale.
//!
//! ## Data flow
//!
//! ```text
//! SceneFrame (datasets) ──▶ VideoFrame (ingestion fidelity)
//!        │ degrade(fidelity)                │ encode(coding)
//!        ▼                                  ▼
//! VideoFrame (storage fidelity) ──▶ SegmentData ──▶ bytes (vstore-storage)
//!                                        │ decode / decode_sampled
//!                                        ▼
//!                            VideoFrame (consumption fidelity)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod container;
pub mod frame;
pub mod meta;
pub mod transcode;
pub mod wire;

pub use codec::{decode_segment, decode_segment_sampled, encode_segment, EncodedSegment};
pub use container::SegmentData;
pub use frame::VideoFrame;
pub use meta::SegmentMeta;
pub use transcode::{TranscodeOutput, Transcoder};
