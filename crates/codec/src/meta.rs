//! Compressed-domain segment metadata: per-frame change scores computed at
//! ingest and persisted as a small versioned sidecar next to the segment.
//!
//! The query planner (EKO-style, see `PAPERS.md`) consults these scores to
//! skip fetching and decoding segments whose content is static enough that
//! the first cascade stage would discard almost everything anyway. The
//! scores are derived directly from the stored representation — for encoded
//! segments the RLE payloads are expanded but **no `VideoFrame` is ever
//! materialised** — so computing a sidecar is much cheaper than a decode.
//!
//! ## Scoring
//!
//! Every stored frame with a predecessor gets one score: the mean, over all
//! block samples, of the *wrapped* byte distance `min(d, 256 - d)` between
//! the frame and its predecessor. For delta frames the deltas already *are*
//! `cur.wrapping_sub(prev)`, so the score falls straight out of the payload.
//! The wrapped distance is a metric on `Z/256`, which gives the planner a
//! triangle inequality: the change between two *sampled* frames several
//! positions apart is bounded by the sum of the per-frame scores between
//! them — that is exactly what [`SegmentMeta::max_sampled_change`] computes.
//!
//! The skip decision built on these scores is deliberately approximate (the
//! wrapped distance lower-bounds the plain absolute difference, and the
//! cascade's first stage flags the first frame of every clip regardless of
//! content), so the planner exposes it as an opt-in with an exact-mode off
//! switch. See the README's query-planner section.
//!
//! ## Wire format (`VSMETA`, version 1)
//!
//! ```text
//! magic  b"VSMETA"           6 bytes
//! version u8 = 1
//! frame_count varint         stored frames in the segment
//! first_index varint         source index of the first frame (if any)
//! entry_count varint         frames with a predecessor (= frame_count - 1)
//! entries: (source_index varint, score f32) × entry_count
//! crc32 u32                  over every preceding byte
//! ```

use crate::codec::rle_decode;
use crate::container::SegmentData;
use crate::frame::sampling_selects;
use crate::wire::{crc32, ByteReader, ByteWriter};
use vstore_types::{cast, FrameSampling, Result, VStoreError};

/// Magic bytes prefixing every serialised sidecar.
const MAGIC: &[u8; 6] = b"VSMETA";

/// Current sidecar format version.
pub const META_VERSION: u8 = 1;

/// Score assigned when a frame cannot be compared to its predecessor
/// (dimension change mid-segment): the maximum possible mean wrapped
/// distance, so the planner never skips on its account.
const INCOMPARABLE_SCORE: f32 = 128.0;

/// Mean wrapped byte distance between two sample planes.
fn mean_wrapped_distance(cur: &[u8], prev: &[u8]) -> f32 {
    if cur.is_empty() || cur.len() != prev.len() {
        return INCOMPARABLE_SCORE;
    }
    let sum: u64 = cur
        .iter()
        .zip(prev.iter())
        .map(|(&c, &p)| {
            let d = c.wrapping_sub(p);
            u64::from(d.min(0u8.wrapping_sub(d)))
        })
        .sum();
    (sum as f64 / cur.len() as f64) as f32
}

/// Mean wrapped magnitude of a delta payload (`cur.wrapping_sub(prev)` per
/// sample), which equals the wrapped distance between the two frames.
fn mean_delta_magnitude(deltas: &[u8]) -> f32 {
    if deltas.is_empty() {
        return 0.0;
    }
    let sum: u64 = deltas
        .iter()
        .map(|&d| u64::from(d.min(0u8.wrapping_sub(d))))
        .sum();
    (sum as f64 / deltas.len() as f64) as f32
}

/// Per-segment change metadata, computed at ingest from the stored
/// representation and persisted as a sidecar through the storage backend.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Number of frames stored in the segment.
    frame_count: u64,
    /// Source index of the first stored frame (0 when the segment is empty).
    first_index: u64,
    /// `(source_index, change score)` for every frame with a predecessor,
    /// in presentation order. The first frame of the segment has no
    /// predecessor and therefore no entry.
    entries: Vec<(u64, f32)>,
}

impl SegmentMeta {
    /// Compute the sidecar for a stored segment.
    ///
    /// Encoded segments are scored from their compressed payloads (RLE
    /// expansion only, no frame materialisation); RAW segments from their
    /// sample planes directly. Both representations of the same content
    /// yield identical scores.
    pub fn from_segment(segment: &SegmentData) -> Result<SegmentMeta> {
        match segment {
            SegmentData::Raw(raw) => {
                let mut entries = Vec::new();
                for pair in raw.frames.windows(2) {
                    entries.push((
                        pair[1].source_index,
                        mean_wrapped_distance(pair[1].plane.samples(), pair[0].plane.samples()),
                    ));
                }
                Ok(SegmentMeta {
                    frame_count: raw.frames.len() as u64,
                    first_index: raw.frames.first().map(|f| f.source_index).unwrap_or(0),
                    entries,
                })
            }
            SegmentData::Encoded(seg) => {
                let mut entries = Vec::new();
                let mut prev: Option<Vec<u8>> = None;
                let mut frame_count = 0u64;
                let mut first_index = 0u64;
                for chunk in &seg.chunks {
                    for frame in &chunk.frames {
                        let expected =
                            cast::usize_from_u32(frame.width) * cast::usize_from_u32(frame.height);
                        let samples = rle_decode(&frame.payload, expected)?;
                        if frame_count == 0 {
                            first_index = frame.source_index;
                        }
                        frame_count += 1;
                        let cur = if frame.is_key {
                            // A keyframe stores raw samples; score it against
                            // the reconstructed predecessor (if any).
                            if let Some(p) = &prev {
                                entries
                                    .push((frame.source_index, mean_wrapped_distance(&samples, p)));
                            }
                            samples
                        } else {
                            // A delta frame stores the wrapped differences —
                            // its score is the payload's own mean magnitude.
                            let p = prev.as_ref().ok_or_else(|| {
                                VStoreError::corruption("delta frame without a predecessor")
                            })?;
                            if p.len() != samples.len() {
                                return Err(VStoreError::corruption(
                                    "predecessor dimensions mismatch",
                                ));
                            }
                            entries.push((frame.source_index, mean_delta_magnitude(&samples)));
                            samples
                                .iter()
                                .zip(p.iter())
                                .map(|(&d, &pv)| pv.wrapping_add(d))
                                .collect()
                        };
                        prev = Some(cur);
                    }
                }
                Ok(SegmentMeta {
                    frame_count,
                    first_index,
                    entries,
                })
            }
        }
    }

    /// Number of frames stored in the segment this sidecar describes.
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// Number of scored frames (frames with a predecessor).
    pub fn scored_frames(&self) -> usize {
        self.entries.len()
    }

    /// The largest change any consumer sampling at `sampling` can observe
    /// between two consecutive sampled frames of this segment.
    ///
    /// By the triangle inequality of the wrapped metric, the change between
    /// two sampled frames is at most the sum of the per-frame scores across
    /// the gap separating them; this returns the maximum such gap sum. A
    /// segment whose value falls below the cascade's diff threshold is one
    /// the first stage would discard (modulo its first-frame rule), so the
    /// planner may skip fetching it entirely. Returns 0 when fewer than two
    /// frames are sampled.
    pub fn max_sampled_change(&self, sampling: FrameSampling) -> f64 {
        let mut max = 0.0f64;
        if self.frame_count == 0 {
            return max;
        }
        let mut have_prev_sampled = sampling_selects(self.first_index, sampling);
        let mut acc = 0.0f64;
        for &(index, score) in &self.entries {
            acc += f64::from(score);
            if sampling_selects(index, sampling) {
                if have_prev_sampled && acc > max {
                    max = acc;
                }
                have_prev_sampled = true;
                acc = 0.0;
            }
        }
        max
    }

    /// Serialise to the `VSMETA` sidecar format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(16 + self.entries.len() * 6);
        w.put_raw(MAGIC);
        w.put_u8(META_VERSION);
        w.put_varint(self.frame_count);
        w.put_varint(self.first_index);
        w.put_varint(self.entries.len() as u64);
        for &(index, score) in &self.entries {
            w.put_varint(index);
            w.put_f32(score);
        }
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parse a `VSMETA` sidecar. Any corruption (bad magic, unknown
    /// version, CRC mismatch, truncation, trailing bytes) is reported as
    /// [`VStoreError::Corruption`] so callers can degrade to a full decode.
    pub fn from_bytes(bytes: &[u8]) -> Result<SegmentMeta> {
        if bytes.len() < MAGIC.len() + 1 + 4 {
            return Err(VStoreError::corruption("sidecar too short"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if crc32(body) != stored {
            return Err(VStoreError::corruption("sidecar CRC mismatch"));
        }
        let mut r = ByteReader::new(body);
        if r.get_raw(MAGIC.len())? != MAGIC {
            return Err(VStoreError::corruption("bad sidecar magic"));
        }
        let version = r.get_u8()?;
        if version != META_VERSION {
            return Err(VStoreError::corruption(format!(
                "unknown sidecar version {version}"
            )));
        }
        let frame_count = r.get_varint()?;
        let first_index = r.get_varint()?;
        let entry_count = cast::usize_from_u64(r.get_varint()?, "sidecar entry count")?;
        if entry_count > body.len() {
            return Err(VStoreError::corruption("sidecar entry count implausible"));
        }
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let index = r.get_varint()?;
            let score = r.get_f32()?;
            entries.push((index, score));
        }
        if !r.is_exhausted() {
            return Err(VStoreError::corruption("trailing bytes after sidecar"));
        }
        Ok(SegmentMeta {
            frame_count,
            first_index,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_segment;
    use crate::container::RawSegment;
    use crate::frame::materialize_clip;
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_types::{
        CropFactor, Fidelity, ImageQuality, KeyframeInterval, Resolution, SpeedStep,
    };

    fn fidelity() -> Fidelity {
        Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        )
    }

    fn segment(dataset: Dataset, n: u32) -> SegmentData {
        let src = VideoSource::new(dataset);
        let frames = materialize_clip(&src.clip(0, n), fidelity());
        SegmentData::Encoded(
            encode_segment(&frames, KeyframeInterval::K10, SpeedStep::Medium).unwrap(),
        )
    }

    #[test]
    fn serialisation_round_trips() {
        let meta = SegmentMeta::from_segment(&segment(Dataset::Jackson, 60)).unwrap();
        assert_eq!(meta.frame_count(), 60);
        assert_eq!(meta.scored_frames(), 59);
        let bytes = meta.to_bytes();
        assert_eq!(SegmentMeta::from_bytes(&bytes).unwrap(), meta);
    }

    #[test]
    fn corruption_is_detected() {
        let meta = SegmentMeta::from_segment(&segment(Dataset::Jackson, 20)).unwrap();
        let good = meta.to_bytes();
        // Truncation.
        assert!(SegmentMeta::from_bytes(&good[..good.len() - 1]).is_err());
        assert!(SegmentMeta::from_bytes(&[]).is_err());
        // A flipped byte anywhere trips the CRC.
        for pos in [0, 6, 8, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(SegmentMeta::from_bytes(&bad).is_err(), "byte {pos}");
        }
        // Trailing bytes are rejected even with a fresh CRC.
        let mut padded = good[..good.len() - 4].to_vec();
        padded.push(0);
        let crc = crc32(&padded);
        padded.extend_from_slice(&crc.to_le_bytes());
        assert!(SegmentMeta::from_bytes(&padded).is_err());
    }

    #[test]
    fn encoded_and_raw_representations_score_identically() {
        let src = VideoSource::new(Dataset::Dashcam);
        let frames = materialize_clip(&src.clip(0, 40), fidelity());
        let encoded = SegmentData::Encoded(
            encode_segment(&frames, KeyframeInterval::K5, SpeedStep::Fast).unwrap(),
        );
        let raw = SegmentData::Raw(RawSegment {
            fidelity: fidelity(),
            frames,
        });
        let a = SegmentMeta::from_segment(&encoded).unwrap();
        let b = SegmentMeta::from_segment(&raw).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn static_content_scores_below_busy_content() {
        let park = SegmentMeta::from_segment(&segment(Dataset::Park, 90)).unwrap();
        let dash = SegmentMeta::from_segment(&segment(Dataset::Dashcam, 90)).unwrap();
        let p = park.max_sampled_change(FrameSampling::Full);
        let d = dash.max_sampled_change(FrameSampling::Full);
        assert!(
            d > 2.0 * p,
            "dashcam change {d} not clearly above park change {p}"
        );
    }

    #[test]
    fn sparse_sampling_accumulates_change_over_gaps() {
        let meta = SegmentMeta::from_segment(&segment(Dataset::Jackson, 240)).unwrap();
        let full = meta.max_sampled_change(FrameSampling::Full);
        let sparse = meta.max_sampled_change(FrameSampling::S1_30);
        // Thirty frames of drift accumulate to at least the largest single
        // step (the bound is a sum over the gap).
        assert!(sparse >= full, "sparse {sparse} < full {full}");
    }

    #[test]
    fn sampled_change_upper_bounds_true_sampled_diffs() {
        for dataset in [Dataset::Jackson, Dataset::Park, Dataset::Dashcam] {
            let seg = segment(dataset, 120);
            let meta = SegmentMeta::from_segment(&seg).unwrap();
            for sampling in [
                FrameSampling::Full,
                FrameSampling::S1_6,
                FrameSampling::S1_30,
            ] {
                let bound = meta.max_sampled_change(sampling);
                let (frames, _) = seg.decode_sampled(sampling).unwrap();
                for pair in frames.windows(2) {
                    let actual =
                        mean_wrapped_distance(pair[1].plane.samples(), pair[0].plane.samples());
                    assert!(
                        f64::from(actual) <= bound + 1e-3,
                        "{dataset:?} {sampling:?}: actual {actual} exceeds bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_segments_report_zero_change() {
        let src = VideoSource::new(Dataset::Park);
        let frames = materialize_clip(&src.clip(0, 1), fidelity());
        let raw = SegmentData::Raw(RawSegment {
            fidelity: fidelity(),
            frames,
        });
        let meta = SegmentMeta::from_segment(&raw).unwrap();
        assert_eq!(meta.frame_count(), 1);
        assert_eq!(meta.scored_frames(), 0);
        assert_eq!(meta.max_sampled_change(FrameSampling::Full), 0.0);

        let empty = SegmentData::Raw(RawSegment {
            fidelity: fidelity(),
            frames: Vec::new(),
        });
        let meta = SegmentMeta::from_segment(&empty).unwrap();
        assert_eq!(meta.max_sampled_change(FrameSampling::Full), 0.0);
        // And the empty sidecar still round-trips.
        assert_eq!(SegmentMeta::from_bytes(&meta.to_bytes()).unwrap(), meta);
    }
}
