//! The transcoder: turns ingestion-fidelity scene frames into an arbitrary
//! storage format, and converts decoded frames into consumption formats.
//!
//! This is the FFmpeg/libx264 stand-in. Real data flows through (frames are
//! degraded and encoded for real); the *cost* of doing so on the paper's
//! testbed is charged through the calibrated
//! [`CodingCostModel`](vstore_sim::CodingCostModel).

use crate::codec::encode_segment;
use crate::container::{RawSegment, SegmentData};
use crate::frame::{materialize_clip, sampling_selects, VideoFrame};
use vstore_datasets::SceneFrame;
use vstore_sim::CodingCostModel;
use vstore_types::{
    ByteSize, CodingOption, ConsumptionFormat, Result, Speed, StorageFormat, VStoreError,
};

/// The result of transcoding one segment into one storage format.
#[derive(Debug, Clone)]
pub struct TranscodeOutput {
    /// The encoded (or RAW) segment ready for the segment store.
    pub data: SegmentData,
    /// CPU-core-seconds the paper's testbed would spend producing it.
    pub encode_core_seconds: f64,
    /// The size the calibrated model predicts for this segment.
    pub modeled_bytes: ByteSize,
    /// The size of the actual serialised container.
    pub actual_bytes: ByteSize,
}

/// The transcoder.
#[derive(Debug, Clone)]
pub struct Transcoder {
    cost_model: CodingCostModel,
}

impl Transcoder {
    /// A transcoder charging costs against the given model.
    pub fn new(cost_model: CodingCostModel) -> Self {
        Transcoder { cost_model }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CodingCostModel {
        &self.cost_model
    }

    /// Transcode a clip of ingestion-fidelity scene frames into the given
    /// storage format. `motion` is the content's motion intensity, used by
    /// the cost model.
    pub fn transcode_segment(
        &self,
        scenes: &[SceneFrame],
        format: &StorageFormat,
        motion: f64,
    ) -> Result<TranscodeOutput> {
        if scenes.is_empty() {
            return Err(VStoreError::invalid_argument(
                "cannot transcode an empty clip",
            ));
        }
        let frames = materialize_clip(scenes, format.fidelity);
        if frames.is_empty() {
            return Err(VStoreError::invalid_argument(
                "sampling left no frames to store for this segment",
            ));
        }
        let data = match format.coding {
            CodingOption::Raw => SegmentData::Raw(RawSegment {
                fidelity: format.fidelity,
                frames,
            }),
            CodingOption::Encoded {
                keyframe_interval,
                speed,
            } => SegmentData::Encoded(encode_segment(&frames, keyframe_interval, speed)?),
        };
        let duration_seconds = scenes.len() as f64 / 30.0;
        let encode_core_seconds =
            self.cost_model.encode_cores_for_realtime(format, motion) * duration_seconds;
        let modeled_bytes = self
            .cost_model
            .bytes_per_video_second(format, motion)
            .scale(duration_seconds);
        let actual_bytes = ByteSize(data.to_bytes().len() as u64);
        Ok(TranscodeOutput {
            data,
            encode_core_seconds,
            modeled_bytes,
            actual_bytes,
        })
    }

    /// Convert frames decoded from a storage format into a consumption
    /// format: select the frames the CF's sampling rate wants (substituting
    /// the nearest stored frame when the stored sampling grid does not align
    /// exactly) and degrade each to the CF fidelity.
    pub fn convert_for_consumption(
        &self,
        stored: &[VideoFrame],
        cf: &ConsumptionFormat,
    ) -> Result<Vec<VideoFrame>> {
        if stored.is_empty() {
            return Ok(Vec::new());
        }
        let stored_fidelity = stored[0].fidelity;
        if !stored_fidelity.richer_or_equal(&cf.fidelity) {
            return Err(VStoreError::FidelityUnsatisfiable(format!(
                "stored fidelity {} cannot serve consumption fidelity {}",
                stored_fidelity, cf.fidelity
            )));
        }
        let first = stored.first().map(|f| f.source_index).unwrap_or(0);
        let last = stored.last().map(|f| f.source_index).unwrap_or(first);
        let mut out = Vec::new();
        let mut cursor = 0usize;
        for index in first..=last {
            if !sampling_selects(index, cf.fidelity.sampling) {
                continue;
            }
            // Advance the cursor to the stored frame closest to `index`.
            while cursor + 1 < stored.len()
                && stored[cursor + 1].source_index.abs_diff(index)
                    <= stored[cursor].source_index.abs_diff(index)
            {
                cursor += 1;
            }
            out.push(stored[cursor].degrade_to(cf.fidelity)?);
        }
        Ok(out)
    }

    /// The retrieval speed (×realtime) the cost model predicts for reading
    /// and decoding this storage format on behalf of a consumer with the
    /// given consumption fidelity.
    pub fn retrieval_speed(
        &self,
        format: &StorageFormat,
        motion: f64,
        cf: &ConsumptionFormat,
    ) -> Speed {
        self.cost_model
            .retrieval_speed(format, motion, cf.fidelity.sampling)
    }
}

impl Default for Transcoder {
    fn default() -> Self {
        Transcoder::new(CodingCostModel::paper_testbed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_types::{
        CropFactor, Fidelity, FrameSampling, ImageQuality, KeyframeInterval, Resolution, SpeedStep,
    };

    fn scenes(dataset: Dataset, n: u32) -> Vec<SceneFrame> {
        VideoSource::new(dataset).clip(0, n)
    }

    fn encoded_format() -> StorageFormat {
        StorageFormat::new(
            Fidelity::new(
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::S1_6,
            ),
            CodingOption::Encoded {
                keyframe_interval: KeyframeInterval::K50,
                speed: SpeedStep::Slow,
            },
        )
    }

    #[test]
    fn transcode_to_encoded_format() {
        let t = Transcoder::default();
        let out = t
            .transcode_segment(&scenes(Dataset::Jackson, 240), &encoded_format(), 0.3)
            .unwrap();
        assert_eq!(out.data.fidelity(), encoded_format().fidelity);
        // 240 frames at 1/6 sampling → 40 stored frames.
        assert_eq!(out.data.frame_count(), 40);
        assert!(out.encode_core_seconds > 0.0);
        assert!(out.modeled_bytes.bytes() > 0);
        assert!(out.actual_bytes.bytes() > 0);
    }

    #[test]
    fn transcode_to_raw_format() {
        let t = Transcoder::default();
        let format = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::Full,
            ),
            CodingOption::Raw,
        );
        let out = t
            .transcode_segment(&scenes(Dataset::Park, 60), &format, 0.1)
            .unwrap();
        assert!(matches!(out.data, SegmentData::Raw(_)));
        assert_eq!(out.data.frame_count(), 60);
        // RAW transcode is much cheaper than a slow software encode.
        let golden = StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST);
        let golden_out = t
            .transcode_segment(&scenes(Dataset::Park, 60), &golden, 0.1)
            .unwrap();
        assert!(out.encode_core_seconds < golden_out.encode_core_seconds / 5.0);
    }

    #[test]
    fn transcode_rejects_empty_input() {
        let t = Transcoder::default();
        assert!(t.transcode_segment(&[], &encoded_format(), 0.3).is_err());
    }

    #[test]
    fn consumption_conversion_degrades_and_samples() {
        let t = Transcoder::default();
        let out = t
            .transcode_segment(&scenes(Dataset::Jackson, 240), &encoded_format(), 0.3)
            .unwrap();
        let stored = out.data.decode_all().unwrap();
        let cf = ConsumptionFormat::new(Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R180,
            FrameSampling::S1_30,
        ));
        let frames = t.convert_for_consumption(&stored, &cf).unwrap();
        // 240 source frames at 1/30 → 8 frames.
        assert_eq!(frames.len(), 8);
        assert!(frames.iter().all(|f| f.fidelity == cf.fidelity));
        assert!(frames[0].plane.width() < stored[0].plane.width());
    }

    #[test]
    fn consumption_conversion_rejects_richer_target() {
        let t = Transcoder::default();
        let out = t
            .transcode_segment(&scenes(Dataset::Jackson, 60), &encoded_format(), 0.3)
            .unwrap();
        let stored = out.data.decode_all().unwrap();
        let cf = ConsumptionFormat::new(Fidelity::INGESTION);
        assert!(t.convert_for_consumption(&stored, &cf).is_err());
    }

    #[test]
    fn misaligned_sampling_substitutes_nearest_frames() {
        // Store at 2/3 sampling, consume at 1/2: some wanted indices are
        // missing from the store and must be substituted.
        let t = Transcoder::default();
        let format = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R360,
                FrameSampling::S2_3,
            ),
            CodingOption::Encoded {
                keyframe_interval: KeyframeInterval::K10,
                speed: SpeedStep::Fast,
            },
        );
        let out = t
            .transcode_segment(&scenes(Dataset::Airport, 120), &format, 0.2)
            .unwrap();
        let stored = out.data.decode_all().unwrap();
        let cf = ConsumptionFormat::new(Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::S1_2,
        ));
        let frames = t.convert_for_consumption(&stored, &cf).unwrap();
        // Roughly half of the 120-frame range (up to the last stored index).
        assert!(
            frames.len() >= 55 && frames.len() <= 60,
            "got {}",
            frames.len()
        );
    }

    #[test]
    fn retrieval_speed_reflects_consumer_sampling() {
        let t = Transcoder::default();
        let format = encoded_format();
        let sparse = ConsumptionFormat::new(Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::S1_30,
        ));
        let dense = ConsumptionFormat::new(Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        ));
        let s_sparse = t.retrieval_speed(&format, 0.3, &sparse);
        let s_dense = t.retrieval_speed(&format, 0.3, &dense);
        assert!(s_sparse.factor() >= s_dense.factor());
    }

    #[test]
    fn modeled_size_tracks_actual_size_ordering() {
        // The calibrated model and the real codec should at least agree on
        // which of two formats is bigger.
        let t = Transcoder::default();
        let scenes = scenes(Dataset::Jackson, 120);
        let small = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Bad,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::S1_6,
            ),
            CodingOption::SMALLEST,
        );
        let big = StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST);
        let out_small = t.transcode_segment(&scenes, &small, 0.3).unwrap();
        let out_big = t.transcode_segment(&scenes, &big, 0.3).unwrap();
        assert!(out_big.modeled_bytes > out_small.modeled_bytes);
        assert!(out_big.actual_bytes > out_small.actual_bytes);
    }
}
