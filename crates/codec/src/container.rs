//! The segment container: the unit stored in and retrieved from the segment
//! store, either an encoded bitstream or RAW frames (coding bypass), plus a
//! compact binary serialisation.

use crate::codec::{
    decode_segment, decode_segment_sampled, DecodeStats, EncodedChunk, EncodedFrame, EncodedSegment,
};
use crate::frame::{sampling_selects, VideoFrame};
use crate::wire::{ByteReader, ByteWriter};
use serde::{Deserialize, Serialize};
use vstore_datasets::{BlockPlane, BoundingBox, ObjectClass, ObjectColor, PlateText, SceneObject};
use vstore_types::{
    cast, CodingOption, CropFactor, Fidelity, FrameSampling, ImageQuality, KeyframeInterval,
    Resolution, Result, SpeedStep, StorageFormat, VStoreError,
};

/// Magic bytes prefixing every serialised segment.
const MAGIC: &[u8; 6] = b"VSSEG1";

/// A RAW (coding-bypass) segment: frames stored as uncompressed planes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSegment {
    /// Fidelity of the stored frames.
    pub fidelity: Fidelity,
    /// The frames, in presentation order.
    pub frames: Vec<VideoFrame>,
}

/// The unit of storage: one 8-second segment in one storage format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SegmentData {
    /// An encoded bitstream.
    Encoded(EncodedSegment),
    /// RAW frames (coding bypass).
    Raw(RawSegment),
}

impl SegmentData {
    /// The storage format this segment is stored in.
    pub fn storage_format(&self) -> StorageFormat {
        match self {
            SegmentData::Encoded(seg) => StorageFormat::new(
                seg.fidelity,
                CodingOption::Encoded {
                    keyframe_interval: seg.keyframe_interval,
                    speed: seg.speed,
                },
            ),
            SegmentData::Raw(seg) => StorageFormat::new(seg.fidelity, CodingOption::Raw),
        }
    }

    /// Fidelity of the stored frames.
    pub fn fidelity(&self) -> Fidelity {
        match self {
            SegmentData::Encoded(seg) => seg.fidelity,
            SegmentData::Raw(seg) => seg.fidelity,
        }
    }

    /// Number of stored frames.
    pub fn frame_count(&self) -> usize {
        match self {
            SegmentData::Encoded(seg) => seg.frame_count(),
            SegmentData::Raw(seg) => seg.frames.len(),
        }
    }

    /// Source index of the first stored frame.
    pub fn first_index(&self) -> Option<u64> {
        match self {
            SegmentData::Encoded(seg) => seg.first_index(),
            SegmentData::Raw(seg) => seg.frames.first().map(|f| f.source_index),
        }
    }

    /// Decode every stored frame.
    pub fn decode_all(&self) -> Result<Vec<VideoFrame>> {
        match self {
            SegmentData::Encoded(seg) => decode_segment(seg),
            SegmentData::Raw(seg) => Ok(seg.frames.clone()),
        }
    }

    /// Decode only the frames a consumer with the given sampling rate needs,
    /// returning decode statistics (for RAW segments no decoding happens and
    /// unneeded frames are never touched).
    pub fn decode_sampled(
        &self,
        consumer_sampling: FrameSampling,
    ) -> Result<(Vec<VideoFrame>, DecodeStats)> {
        match self {
            SegmentData::Encoded(seg) => decode_segment_sampled(seg, consumer_sampling),
            SegmentData::Raw(seg) => {
                let frames: Vec<VideoFrame> = seg
                    .frames
                    .iter()
                    .filter(|f| sampling_selects(f.source_index, consumer_sampling))
                    .cloned()
                    .collect();
                let stats = DecodeStats {
                    frames_decoded: 0,
                    frames_emitted: frames.len(),
                    chunks_skipped: 0,
                };
                Ok((frames, stats))
            }
        }
    }

    // -----------------------------------------------------------------
    // Serialisation
    // -----------------------------------------------------------------

    /// Serialise to the binary container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(4096);
        w.put_raw(MAGIC);
        match self {
            SegmentData::Raw(seg) => {
                w.put_u8(0);
                write_fidelity(&mut w, &seg.fidelity);
                w.put_varint(seg.frames.len() as u64);
                for f in &seg.frames {
                    write_frame_header(
                        &mut w,
                        f.source_index,
                        f.plane.width(),
                        f.plane.height(),
                        f.signal_retention,
                    );
                    w.put_bytes(f.plane.samples());
                    write_objects(&mut w, &f.objects);
                }
            }
            SegmentData::Encoded(seg) => {
                w.put_u8(1);
                write_fidelity(&mut w, &seg.fidelity);
                // vstore-lint: allow(checked-cast) — ranks index <=6-entry knob ladders
                w.put_u8(seg.keyframe_interval.rank() as u8);
                // vstore-lint: allow(checked-cast) — ranks index <=6-entry knob ladders
                w.put_u8(seg.speed.rank() as u8);
                w.put_varint(seg.chunks.len() as u64);
                for chunk in &seg.chunks {
                    w.put_varint(chunk.frames.len() as u64);
                    for f in &chunk.frames {
                        write_frame_header(
                            &mut w,
                            f.source_index,
                            f.width,
                            f.height,
                            f.signal_retention,
                        );
                        w.put_u8(u8::from(f.is_key));
                        w.put_bytes(&f.payload);
                        write_objects(&mut w, &f.objects);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Deserialise from the binary container format.
    pub fn from_bytes(bytes: &[u8]) -> Result<SegmentData> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_raw(MAGIC.len())?;
        if magic != MAGIC {
            return Err(VStoreError::corruption("bad segment magic"));
        }
        let kind = r.get_u8()?;
        match kind {
            0 => {
                let fidelity = read_fidelity(&mut r)?;
                let count = cast::usize_from_u64(r.get_varint()?, "raw frame count")?;
                let mut frames = Vec::with_capacity(count);
                for _ in 0..count {
                    let (source_index, width, height, retention) = read_frame_header(&mut r)?;
                    let samples = r.get_bytes()?.to_vec();
                    let plane =
                        BlockPlane::from_samples(width, height, samples).ok_or_else(|| {
                            VStoreError::corruption("raw frame sample count mismatch")
                        })?;
                    let objects = read_objects(&mut r)?;
                    frames.push(VideoFrame {
                        source_index,
                        fidelity,
                        plane,
                        objects,
                        signal_retention: retention,
                    });
                }
                Ok(SegmentData::Raw(RawSegment { fidelity, frames }))
            }
            1 => {
                let fidelity = read_fidelity(&mut r)?;
                let ki_rank = usize::from(r.get_u8()?);
                let sp_rank = usize::from(r.get_u8()?);
                let keyframe_interval = *KeyframeInterval::ALL
                    .get(ki_rank)
                    .ok_or_else(|| VStoreError::corruption("bad keyframe interval"))?;
                let speed = *SpeedStep::ALL
                    .get(sp_rank)
                    .ok_or_else(|| VStoreError::corruption("bad speed step"))?;
                let chunk_count = cast::usize_from_u64(r.get_varint()?, "chunk count")?;
                let mut chunks = Vec::with_capacity(chunk_count);
                for _ in 0..chunk_count {
                    let frame_count = cast::usize_from_u64(r.get_varint()?, "frame count")?;
                    let mut frames = Vec::with_capacity(frame_count);
                    for _ in 0..frame_count {
                        let (source_index, width, height, retention) = read_frame_header(&mut r)?;
                        let is_key = r.get_u8()? != 0;
                        let payload = r.get_bytes()?.to_vec();
                        let objects = read_objects(&mut r)?;
                        frames.push(EncodedFrame {
                            source_index,
                            width,
                            height,
                            is_key,
                            payload,
                            objects,
                            signal_retention: retention,
                        });
                    }
                    chunks.push(EncodedChunk { frames });
                }
                Ok(SegmentData::Encoded(EncodedSegment {
                    fidelity,
                    keyframe_interval,
                    speed,
                    chunks,
                }))
            }
            other => Err(VStoreError::corruption(format!(
                "unknown segment kind {other}"
            ))),
        }
    }
}

fn write_fidelity(w: &mut ByteWriter, f: &Fidelity) {
    // The four fidelity ranks index knob ladders of at most six entries,
    // so each fits a byte by construction.
    // vstore-lint: allow(checked-cast)
    w.put_u8(f.quality.rank() as u8);
    // vstore-lint: allow(checked-cast)
    w.put_u8(f.crop.rank() as u8);
    // vstore-lint: allow(checked-cast)
    w.put_u8(f.resolution.rank() as u8);
    // vstore-lint: allow(checked-cast)
    w.put_u8(f.sampling.rank() as u8);
}

fn read_fidelity(r: &mut ByteReader<'_>) -> Result<Fidelity> {
    let q = usize::from(r.get_u8()?);
    let c = usize::from(r.get_u8()?);
    let res = usize::from(r.get_u8()?);
    let s = usize::from(r.get_u8()?);
    Ok(Fidelity {
        quality: *ImageQuality::ALL
            .get(q)
            .ok_or_else(|| VStoreError::corruption("bad quality rank"))?,
        crop: *CropFactor::ALL
            .get(c)
            .ok_or_else(|| VStoreError::corruption("bad crop rank"))?,
        resolution: *Resolution::ALL
            .get(res)
            .ok_or_else(|| VStoreError::corruption("bad resolution rank"))?,
        sampling: *FrameSampling::ALL
            .get(s)
            .ok_or_else(|| VStoreError::corruption("bad sampling rank"))?,
    })
}

fn write_frame_header(w: &mut ByteWriter, index: u64, width: u32, height: u32, retention: f64) {
    w.put_varint(index);
    // Plane dimensions are block counts derived from the Resolution knob
    // ladder (<= 1080p), far inside u16.
    // vstore-lint: allow(checked-cast)
    w.put_u16(width as u16);
    // vstore-lint: allow(checked-cast)
    w.put_u16(height as u16);
    w.put_f64(retention);
}

fn read_frame_header(r: &mut ByteReader<'_>) -> Result<(u64, u32, u32, f64)> {
    let index = r.get_varint()?;
    let width = u32::from(r.get_u16()?);
    let height = u32::from(r.get_u16()?);
    let retention = r.get_f64()?;
    Ok((index, width, height, retention))
}

fn write_objects(w: &mut ByteWriter, objects: &[SceneObject]) {
    w.put_varint(objects.len() as u64);
    for o in objects {
        w.put_u64(o.id);
        let class_code = match o.class {
            ObjectClass::Vehicle {
                plate_visible: false,
            } => 0u8,
            ObjectClass::Vehicle {
                plate_visible: true,
            } => 1,
            ObjectClass::Pedestrian => 2,
            ObjectClass::Cyclist => 3,
        };
        w.put_u8(class_code);
        w.put_f32(o.bbox.x);
        w.put_f32(o.bbox.y);
        w.put_f32(o.bbox.w);
        w.put_f32(o.bbox.h);
        let color_code = ObjectColor::ALL
            .iter()
            .position(|c| *c == o.color)
            .unwrap_or(0) as u8; // vstore-lint: allow(checked-cast) — position in an 8-entry array
        w.put_u8(color_code);
        match &o.plate {
            Some(p) => {
                w.put_u8(1);
                w.put_raw(&p.0);
            }
            None => w.put_u8(0),
        }
        w.put_f32(o.salience);
        w.put_f32(o.speed);
    }
}

fn read_objects(r: &mut ByteReader<'_>) -> Result<Vec<SceneObject>> {
    let count = cast::usize_from_u64(r.get_varint()?, "object count")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.get_u64()?;
        let class = match r.get_u8()? {
            0 => ObjectClass::Vehicle {
                plate_visible: false,
            },
            1 => ObjectClass::Vehicle {
                plate_visible: true,
            },
            2 => ObjectClass::Pedestrian,
            3 => ObjectClass::Cyclist,
            other => {
                return Err(VStoreError::corruption(format!(
                    "unknown object class {other}"
                )))
            }
        };
        let x = r.get_f32()?;
        let y = r.get_f32()?;
        let w_ = r.get_f32()?;
        let h = r.get_f32()?;
        let color_code = usize::from(r.get_u8()?);
        let color = *ObjectColor::ALL
            .get(color_code)
            .ok_or_else(|| VStoreError::corruption("bad color code"))?;
        let plate = match r.get_u8()? {
            0 => None,
            1 => {
                let raw = r.get_raw(7)?;
                let mut buf = [0u8; 7];
                buf.copy_from_slice(raw);
                Some(PlateText(buf))
            }
            other => return Err(VStoreError::corruption(format!("bad plate marker {other}"))),
        };
        let salience = r.get_f32()?;
        let speed = r.get_f32()?;
        out.push(SceneObject {
            id,
            class,
            bbox: BoundingBox::new(x, y, w_, h),
            color,
            plate,
            salience,
            speed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_segment;
    use crate::frame::materialize_clip;
    use vstore_datasets::{Dataset, VideoSource};

    fn encoded_segment() -> SegmentData {
        let src = VideoSource::new(Dataset::Jackson);
        let fidelity = Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        );
        let frames = materialize_clip(&src.clip(0, 60), fidelity);
        SegmentData::Encoded(
            encode_segment(&frames, KeyframeInterval::K10, SpeedStep::Fast).unwrap(),
        )
    }

    fn raw_segment() -> SegmentData {
        let src = VideoSource::new(Dataset::Dashcam);
        let fidelity = Fidelity::new(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R200,
            FrameSampling::Full,
        );
        let frames = materialize_clip(&src.clip(0, 30), fidelity);
        SegmentData::Raw(RawSegment { fidelity, frames })
    }

    #[test]
    fn encoded_round_trip_through_bytes() {
        let seg = encoded_segment();
        let bytes = seg.to_bytes();
        let back = SegmentData::from_bytes(&bytes).unwrap();
        assert_eq!(seg, back);
        assert_eq!(back.frame_count(), 60);
        assert!(!back.storage_format().coding.is_raw());
    }

    #[test]
    fn raw_round_trip_through_bytes() {
        let seg = raw_segment();
        let bytes = seg.to_bytes();
        let back = SegmentData::from_bytes(&bytes).unwrap();
        assert_eq!(seg, back);
        assert!(back.storage_format().coding.is_raw());
        assert_eq!(back.first_index(), Some(0));
    }

    #[test]
    fn corrupt_magic_and_truncation_are_rejected() {
        let seg = encoded_segment();
        let mut bytes = seg.to_bytes();
        bytes[0] = b'X';
        assert!(SegmentData::from_bytes(&bytes).is_err());
        let bytes = seg.to_bytes();
        assert!(SegmentData::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(SegmentData::from_bytes(&[]).is_err());
    }

    #[test]
    fn decode_all_and_sampled_work_for_both_variants() {
        for seg in [encoded_segment(), raw_segment()] {
            let all = seg.decode_all().unwrap();
            assert_eq!(all.len(), seg.frame_count());
            let (sampled, stats) = seg.decode_sampled(FrameSampling::S1_30).unwrap();
            assert!(sampled.len() < all.len());
            assert_eq!(stats.frames_emitted, sampled.len());
            assert!(sampled.iter().all(|f| f.source_index % 30 == 0));
        }
    }

    #[test]
    fn raw_decode_touches_no_decoder() {
        let seg = raw_segment();
        let (_, stats) = seg.decode_sampled(FrameSampling::S1_6).unwrap();
        assert_eq!(stats.frames_decoded, 0);
    }

    #[test]
    fn encoded_smaller_than_raw_on_disk_for_static_scene() {
        let src = VideoSource::new(Dataset::Park);
        let fidelity = Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        );
        let frames = materialize_clip(&src.clip(0, 60), fidelity);
        let encoded = SegmentData::Encoded(
            encode_segment(&frames, KeyframeInterval::K50, SpeedStep::Slow).unwrap(),
        );
        let raw = SegmentData::Raw(RawSegment { fidelity, frames });
        assert!(encoded.to_bytes().len() * 2 < raw.to_bytes().len());
    }
}
