//! Materialised video frames and fidelity degradation.
//!
//! A [`VideoFrame`] is a frame at a specific fidelity: its block plane has
//! been cropped, resized and quantised accordingly, and its object metadata
//! lists only the objects that survive the crop. Degradation is the data-path
//! operation behind both ingestion-time transcoding (SF fidelity) and
//! retrieval-time conversion (CF fidelity); the richer-than partial order
//! guarantees it is only ever applied "downhill".

use serde::{Deserialize, Serialize};
use vstore_datasets::{BlockPlane, SceneFrame, SceneObject};
use vstore_types::{cast, Fidelity, Result, VStoreError};

/// A frame materialised at a specific fidelity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoFrame {
    /// Index of the frame in the original 30 fps stream.
    pub source_index: u64,
    /// The fidelity this frame is materialised at.
    pub fidelity: Fidelity,
    /// The (cropped, resized, quantised) block plane.
    pub plane: BlockPlane,
    /// Ground-truth objects that survive the crop, with bounding boxes still
    /// normalised to the *full* frame. Carried as side-band metadata so the
    /// operator models can assess detectability at this fidelity.
    pub objects: Vec<SceneObject>,
    /// Compound signal retention in `(0, 1]`: the product of the quality
    /// knob's retention over every lossy hop this frame went through.
    pub signal_retention: f64,
}

impl VideoFrame {
    /// Materialise a generated scene frame at a fidelity.
    pub fn from_scene(scene: &SceneFrame, fidelity: Fidelity) -> VideoFrame {
        let cropped = scene.plane.crop_center(fidelity.crop);
        let (w, h) = BlockPlane::dimensions_for(fidelity.resolution);
        // Cropping reduces the field of view, not the output resolution; the
        // cropped region is delivered at the target resolution scaled by the
        // crop's linear fraction.
        let out_w =
            cast::u32_saturating_from_f64(f64::from(w) * fidelity.crop.linear_fraction()).max(1);
        let out_h =
            cast::u32_saturating_from_f64(f64::from(h) * fidelity.crop.linear_fraction()).max(1);
        let resized = cropped.resize(out_w, out_h);
        let retention = fidelity.quality.signal_retention();
        let plane = resized.quantize(retention);
        let objects = scene.objects_under_crop(fidelity.crop).cloned().collect();
        VideoFrame {
            source_index: scene.index,
            fidelity,
            plane,
            objects,
            signal_retention: retention,
        }
    }

    /// Degrade this frame to a poorer (or equal) fidelity.
    ///
    /// Fails with [`VStoreError::FidelityUnsatisfiable`] when the target is
    /// not satisfiable from this frame's fidelity (requirement R1). Sampling
    /// is a sequence-level knob and is ignored here; callers drop frames
    /// separately.
    pub fn degrade_to(&self, target: Fidelity) -> Result<VideoFrame> {
        // Sampling compatibility is checked by sequence-level code; compare
        // only the per-frame knobs here.
        let per_frame_self = Fidelity {
            sampling: target.sampling,
            ..self.fidelity
        };
        if !per_frame_self.richer_or_equal(&target) {
            return Err(VStoreError::FidelityUnsatisfiable(format!(
                "cannot degrade frame at {} to richer fidelity {}",
                self.fidelity, target
            )));
        }
        if per_frame_self == target {
            let mut out = self.clone();
            out.fidelity = target;
            return Ok(out);
        }
        // Additional crop relative to what has already been applied.
        let crop_ratio = target.crop.linear_fraction() / self.fidelity.crop.linear_fraction();
        let cropped = if crop_ratio < 0.999 {
            let new_w =
                cast::u32_saturating_from_f64(f64::from(self.plane.width()) * crop_ratio).max(1);
            let new_h =
                cast::u32_saturating_from_f64(f64::from(self.plane.height()) * crop_ratio).max(1);
            let x0 = (self.plane.width() - new_w) / 2;
            let y0 = (self.plane.height() - new_h) / 2;
            let mut samples =
                Vec::with_capacity(cast::usize_from_u32(new_w) * cast::usize_from_u32(new_h));
            for y in y0..y0 + new_h {
                for x in x0..x0 + new_w {
                    samples.push(self.plane.get(x, y));
                }
            }
            BlockPlane::from_samples(new_w, new_h, samples)
                .expect("crop sample count matches dimensions") // vstore-lint: allow(no-unwrap)
        } else {
            self.plane.clone()
        };
        let (w, h) = BlockPlane::dimensions_for(target.resolution);
        let out_w =
            cast::u32_saturating_from_f64(f64::from(w) * target.crop.linear_fraction()).max(1);
        let out_h =
            cast::u32_saturating_from_f64(f64::from(h) * target.crop.linear_fraction()).max(1);
        let resized = cropped.resize(out_w, out_h);
        // Re-quantise only if the target quality is poorer than what the
        // frame already went through.
        let target_retention = target.quality.signal_retention();
        let (plane, retention) = if target_retention < self.signal_retention {
            (resized.quantize(target_retention), target_retention)
        } else {
            (resized, self.signal_retention)
        };
        let objects = self
            .objects
            .iter()
            .filter(|o| o.bbox.visible_under_crop(target.crop))
            .cloned()
            .collect();
        Ok(VideoFrame {
            source_index: self.source_index,
            fidelity: target,
            plane,
            objects,
            signal_retention: retention,
        })
    }

    /// Size of this frame as raw YUV420 pixels at its fidelity, in bytes.
    pub fn raw_size_bytes(&self) -> u64 {
        (self.fidelity.pixels_per_frame() as f64 * 1.5).round() as u64
    }
}

/// Materialise a whole clip of scene frames at a fidelity, applying the
/// fidelity's frame sampling: only every `interval`-th frame (and, for the
/// 2/3 rate, two of every three) is kept.
pub fn materialize_clip(scenes: &[SceneFrame], fidelity: Fidelity) -> Vec<VideoFrame> {
    scenes
        .iter()
        .filter(|s| frame_selected(s.index, fidelity))
        .map(|s| VideoFrame::from_scene(s, fidelity))
        .collect()
}

/// Whether the frame at `index` of the 30 fps stream is kept by the given
/// fidelity's sampling rate.
pub fn frame_selected(index: u64, fidelity: Fidelity) -> bool {
    sampling_selects(index, fidelity.sampling)
}

/// Whether the frame at `index` is kept by a sampling rate.
pub fn sampling_selects(index: u64, sampling: vstore_types::FrameSampling) -> bool {
    use vstore_types::FrameSampling::*;
    match sampling {
        Full => true,
        S2_3 => index % 3 != 2,
        S1_2 => index.is_multiple_of(2),
        S1_6 => index.is_multiple_of(6),
        S1_30 => index.is_multiple_of(30),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_types::{CropFactor, FrameSampling, ImageQuality, Resolution};

    fn scene() -> SceneFrame {
        VideoSource::new(Dataset::Jackson).frame(450)
    }

    #[test]
    fn ingestion_fidelity_preserves_plane_dimensions() {
        let s = scene();
        let f = VideoFrame::from_scene(&s, Fidelity::INGESTION);
        assert_eq!(f.plane.width(), 160);
        assert_eq!(f.plane.height(), 90);
        assert_eq!(f.signal_retention, 1.0);
        assert_eq!(f.objects.len(), s.objects.len());
    }

    #[test]
    fn lower_resolution_shrinks_plane() {
        let s = scene();
        let low = Fidelity::new(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R180,
            FrameSampling::Full,
        );
        let f = VideoFrame::from_scene(&s, low);
        assert!(f.plane.width() < 160 / 2);
        assert!(
            f.raw_size_bytes() < VideoFrame::from_scene(&s, Fidelity::INGESTION).raw_size_bytes()
        );
    }

    #[test]
    fn crop_removes_peripheral_objects() {
        // Scan for a frame where cropping changes the object count.
        let src = VideoSource::new(Dataset::Miami);
        let mut found = false;
        for i in 0..600 {
            let s = src.frame(i);
            let full = VideoFrame::from_scene(&s, Fidelity::INGESTION);
            let cropped_fid = Fidelity::new(
                ImageQuality::Best,
                CropFactor::C50,
                Resolution::R720,
                FrameSampling::Full,
            );
            let cropped = VideoFrame::from_scene(&s, cropped_fid);
            assert!(cropped.objects.len() <= full.objects.len());
            if cropped.objects.len() < full.objects.len() {
                found = true;
                break;
            }
        }
        assert!(found, "cropping never removed an object in 20 s of miami");
    }

    #[test]
    fn degrade_to_richer_fidelity_fails() {
        let s = scene();
        let low = Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R200,
            FrameSampling::Full,
        );
        let f = VideoFrame::from_scene(&s, low);
        let err = f.degrade_to(Fidelity::INGESTION).unwrap_err();
        assert!(matches!(err, VStoreError::FidelityUnsatisfiable(_)));
    }

    #[test]
    fn degrade_matches_direct_materialisation_dimensions() {
        let s = scene();
        let rich = VideoFrame::from_scene(&s, Fidelity::INGESTION);
        let target = Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R360,
            FrameSampling::Full,
        );
        let via_degrade = rich.degrade_to(target).unwrap();
        let direct = VideoFrame::from_scene(&s, target);
        assert_eq!(via_degrade.plane.width(), direct.plane.width());
        assert_eq!(via_degrade.plane.height(), direct.plane.height());
        assert_eq!(via_degrade.objects.len(), direct.objects.len());
        assert_eq!(via_degrade.signal_retention, direct.signal_retention);
        // Content should be close even though the two paths quantise in a
        // different order.
        assert!(via_degrade.plane.mean_abs_diff(&direct.plane) < 20.0);
    }

    #[test]
    fn degrade_is_identity_for_equal_fidelity() {
        let s = scene();
        let f = VideoFrame::from_scene(&s, Fidelity::INGESTION);
        let same = f.degrade_to(Fidelity::INGESTION).unwrap();
        assert_eq!(same.plane, f.plane);
    }

    #[test]
    fn sampling_selection_rates() {
        let count = |s: FrameSampling| (0..3000u64).filter(|i| sampling_selects(*i, s)).count();
        assert_eq!(count(FrameSampling::Full), 3000);
        assert_eq!(count(FrameSampling::S1_2), 1500);
        assert_eq!(count(FrameSampling::S1_6), 500);
        assert_eq!(count(FrameSampling::S1_30), 100);
        assert_eq!(count(FrameSampling::S2_3), 2000);
    }

    #[test]
    fn materialize_clip_applies_sampling() {
        let src = VideoSource::new(Dataset::Park);
        let scenes = src.clip(0, 60);
        let sparse = Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::S1_6,
        );
        let frames = materialize_clip(&scenes, sparse);
        assert_eq!(frames.len(), 10);
        assert!(frames.iter().all(|f| f.source_index % 6 == 0));
    }
}
