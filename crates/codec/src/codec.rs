//! The block codec: GOP-structured, delta-predicted, run-length entropy
//! coded. Lossless at the stored fidelity (all loss comes from the fidelity
//! knobs themselves, exactly as the quality knob intends).
//!
//! The keyframe interval knob controls GOP length. A decoder serving a
//! sparsely-sampling consumer skips whole GOPs that contain no sampled frame
//! and, within a GOP, stops at the last sampled frame — the Figure 3(b)
//! behaviour.

use crate::frame::{sampling_selects, VideoFrame};
use serde::{Deserialize, Serialize};
use vstore_datasets::{BlockPlane, SceneObject};
use vstore_types::{
    cast, Fidelity, FrameSampling, KeyframeInterval, Result, SpeedStep, VStoreError,
};

/// One encoded frame (keyframe or delta frame).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// Index in the original 30 fps stream.
    pub source_index: u64,
    /// Plane width in blocks.
    pub width: u32,
    /// Plane height in blocks.
    pub height: u32,
    /// `true` for keyframes (self-contained), `false` for delta frames.
    pub is_key: bool,
    /// Run-length encoded payload: raw samples for keyframes, wrapping
    /// deltas against the previous frame for delta frames.
    pub payload: Vec<u8>,
    /// Side-band object metadata (see `DESIGN.md`).
    pub objects: Vec<SceneObject>,
    /// Compound signal retention of the encoded frame.
    pub signal_retention: f64,
}

/// A GOP: one keyframe followed by delta frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedChunk {
    /// Frames of the chunk; the first is always a keyframe.
    pub frames: Vec<EncodedFrame>,
}

impl EncodedChunk {
    /// Source index of the first frame, if any.
    pub fn first_index(&self) -> Option<u64> {
        self.frames.first().map(|f| f.source_index)
    }

    /// Source index of the last frame, if any.
    pub fn last_index(&self) -> Option<u64> {
        self.frames.last().map(|f| f.source_index)
    }

    /// Total payload bytes in this chunk.
    pub fn payload_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.payload.len()).sum()
    }
}

/// An encoded video segment: a sequence of GOPs at one storage fidelity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedSegment {
    /// Fidelity of the stored frames.
    pub fidelity: Fidelity,
    /// GOP length used at encode time.
    pub keyframe_interval: KeyframeInterval,
    /// Encoder speed step used at encode time (affects the cost model, not
    /// the payload format).
    pub speed: SpeedStep,
    /// GOPs in presentation order.
    pub chunks: Vec<EncodedChunk>,
}

/// Statistics of a (possibly GOP-skipping) decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Frames actually reconstructed by the decoder.
    pub frames_decoded: usize,
    /// Frames handed to the consumer.
    pub frames_emitted: usize,
    /// GOPs skipped entirely.
    pub chunks_skipped: usize,
}

// ---------------------------------------------------------------------------
// Run-length entropy coding
// ---------------------------------------------------------------------------

/// Run-length encode a byte slice as (run, value) pairs.
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut iter = data.iter().copied();
    let mut current = match iter.next() {
        Some(b) => b,
        None => return out,
    };
    let mut run: u32 = 1;
    for b in iter {
        if b == current && run < 255 {
            run += 1;
        } else {
            // vstore-lint: allow(checked-cast) — run <= 255 by the loop guard above
            out.push(run as u8);
            out.push(current);
            current = b;
            run = 1;
        }
    }
    // vstore-lint: allow(checked-cast) — run <= 255 by the loop guard above
    out.push(run as u8);
    out.push(current);
    out
}

/// Decode an RLE payload produced by [`rle_encode`]. Also used by the
/// metadata sidecar (`meta`) to score frames straight from the compressed
/// payload without building full `VideoFrame`s.
pub(crate) fn rle_decode(data: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(VStoreError::corruption("RLE payload has odd length"));
    }
    let mut out = Vec::with_capacity(expected_len);
    for pair in data.chunks_exact(2) {
        let run = usize::from(pair[0]);
        let value = pair[1];
        if run == 0 {
            return Err(VStoreError::corruption("RLE run of zero"));
        }
        out.resize(out.len() + run, value);
    }
    if out.len() != expected_len {
        return Err(VStoreError::corruption(format!(
            "RLE decoded {} samples, expected {}",
            out.len(),
            expected_len
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

/// Encode a sequence of frames (already materialised at the storage
/// fidelity, sampling applied) into GOPs of `keyframe_interval` frames.
pub fn encode_segment(
    frames: &[VideoFrame],
    keyframe_interval: KeyframeInterval,
    speed: SpeedStep,
) -> Result<EncodedSegment> {
    let first = frames
        .first()
        .ok_or_else(|| VStoreError::invalid_argument("cannot encode an empty segment"))?;
    let fidelity = first.fidelity;
    if frames.iter().any(|f| f.fidelity != fidelity) {
        return Err(VStoreError::invalid_argument(
            "all frames of a segment must share one fidelity",
        ));
    }
    let gop = cast::usize_from_u32(keyframe_interval.frames());
    let mut chunks = Vec::with_capacity(frames.len() / gop + 1);
    for group in frames.chunks(gop) {
        let mut encoded_frames = Vec::with_capacity(group.len());
        let mut prev: Option<&VideoFrame> = None;
        for frame in group {
            let payload_source: Vec<u8> = match prev {
                None => frame.plane.samples().to_vec(),
                Some(p) => {
                    if p.plane.width() != frame.plane.width()
                        || p.plane.height() != frame.plane.height()
                    {
                        return Err(VStoreError::invalid_argument(
                            "frame dimensions changed mid-segment",
                        ));
                    }
                    frame
                        .plane
                        .samples()
                        .iter()
                        .zip(p.plane.samples().iter())
                        .map(|(&c, &pv)| c.wrapping_sub(pv))
                        .collect()
                }
            };
            encoded_frames.push(EncodedFrame {
                source_index: frame.source_index,
                width: frame.plane.width(),
                height: frame.plane.height(),
                is_key: prev.is_none(),
                payload: rle_encode(&payload_source),
                objects: frame.objects.clone(),
                signal_retention: frame.signal_retention,
            });
            prev = Some(frame);
        }
        chunks.push(EncodedChunk {
            frames: encoded_frames,
        });
    }
    Ok(EncodedSegment {
        fidelity,
        keyframe_interval,
        speed,
        chunks,
    })
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

fn decode_frame(encoded: &EncodedFrame, prev_plane: Option<&BlockPlane>) -> Result<VideoFrame> {
    let expected = cast::usize_from_u32(encoded.width) * cast::usize_from_u32(encoded.height);
    let samples = rle_decode(&encoded.payload, expected)?;
    let plane = if encoded.is_key {
        BlockPlane::from_samples(encoded.width, encoded.height, samples)
            .ok_or_else(|| VStoreError::corruption("keyframe sample count mismatch"))?
    } else {
        let prev = prev_plane
            .ok_or_else(|| VStoreError::corruption("delta frame without a decoded predecessor"))?;
        if prev.len() != expected {
            return Err(VStoreError::corruption("predecessor dimensions mismatch"));
        }
        let reconstructed: Vec<u8> = prev
            .samples()
            .iter()
            .zip(samples.iter())
            .map(|(&p, &d)| p.wrapping_add(d))
            .collect();
        BlockPlane::from_samples(encoded.width, encoded.height, reconstructed)
            .ok_or_else(|| VStoreError::corruption("delta frame sample count mismatch"))?
    };
    Ok(VideoFrame {
        source_index: encoded.source_index,
        fidelity: Fidelity::POOREST, // overwritten by the caller
        plane,
        objects: encoded.objects.clone(),
        signal_retention: encoded.signal_retention,
    })
}

/// Decode every frame of the segment.
pub fn decode_segment(segment: &EncodedSegment) -> Result<Vec<VideoFrame>> {
    let (frames, _) = decode_segment_with_stats(segment, None)?;
    Ok(frames)
}

/// Decode only the frames a consumer sampling at `consumer_sampling` (of the
/// original 30 fps stream) needs, skipping GOPs that contain no sampled
/// frame.
pub fn decode_segment_sampled(
    segment: &EncodedSegment,
    consumer_sampling: FrameSampling,
) -> Result<(Vec<VideoFrame>, DecodeStats)> {
    decode_segment_with_stats(segment, Some(consumer_sampling))
}

fn decode_segment_with_stats(
    segment: &EncodedSegment,
    consumer_sampling: Option<FrameSampling>,
) -> Result<(Vec<VideoFrame>, DecodeStats)> {
    let mut out = Vec::new();
    let mut stats = DecodeStats::default();
    for chunk in &segment.chunks {
        let wanted: Vec<bool> = chunk
            .frames
            .iter()
            .map(|f| match consumer_sampling {
                Some(s) => sampling_selects(f.source_index, s),
                None => true,
            })
            .collect();
        let last_wanted = match wanted.iter().rposition(|&w| w) {
            Some(pos) => pos,
            None => {
                stats.chunks_skipped += 1;
                continue;
            }
        };
        let mut prev_plane: Option<BlockPlane> = None;
        for (i, encoded) in chunk.frames.iter().enumerate().take(last_wanted + 1) {
            let mut frame = decode_frame(encoded, prev_plane.as_ref())?;
            frame.fidelity = segment.fidelity;
            stats.frames_decoded += 1;
            prev_plane = Some(frame.plane.clone());
            if wanted[i] {
                stats.frames_emitted += 1;
                out.push(frame);
            }
        }
    }
    Ok((out, stats))
}

impl EncodedSegment {
    /// Total encoded payload size in bytes (excluding container framing).
    pub fn payload_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.payload_bytes()).sum()
    }

    /// Number of stored frames.
    pub fn frame_count(&self) -> usize {
        self.chunks.iter().map(|c| c.frames.len()).sum()
    }

    /// Source index of the first stored frame.
    pub fn first_index(&self) -> Option<u64> {
        self.chunks.first().and_then(|c| c.first_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::materialize_clip;
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_types::{CropFactor, ImageQuality, Resolution};

    fn test_frames(dataset: Dataset, fidelity: Fidelity, n: u32) -> Vec<VideoFrame> {
        let src = VideoSource::new(dataset);
        materialize_clip(&src.clip(0, n), fidelity)
    }

    fn storage_fidelity() -> Fidelity {
        Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        )
    }

    #[test]
    fn rle_round_trip() {
        let data = vec![0u8, 0, 0, 0, 5, 5, 7, 0, 0, 0, 0, 0, 0, 0, 0, 3];
        let enc = rle_encode(&data);
        assert!(enc.len() < data.len());
        assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
        // Long runs exceed the 255-run limit and still round-trip.
        let long = vec![9u8; 1000];
        let enc = rle_encode(&long);
        assert_eq!(rle_decode(&enc, long.len()).unwrap(), long);
        // Empty input.
        assert!(rle_encode(&[]).is_empty());
        assert!(rle_decode(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn rle_rejects_corrupt_payloads() {
        assert!(rle_decode(&[1], 1).is_err());
        assert!(rle_decode(&[0, 7], 0).is_err());
        assert!(rle_decode(&[2, 7], 1).is_err());
    }

    #[test]
    fn encode_decode_round_trip_is_lossless() {
        let frames = test_frames(Dataset::Jackson, storage_fidelity(), 60);
        let seg = encode_segment(&frames, KeyframeInterval::K10, SpeedStep::Medium).unwrap();
        let decoded = decode_segment(&seg).unwrap();
        assert_eq!(decoded.len(), frames.len());
        for (d, f) in decoded.iter().zip(frames.iter()) {
            assert_eq!(d.source_index, f.source_index);
            assert_eq!(
                d.plane, f.plane,
                "plane mismatch at frame {}",
                f.source_index
            );
            assert_eq!(d.objects.len(), f.objects.len());
            assert_eq!(d.fidelity, f.fidelity);
        }
    }

    #[test]
    fn static_content_compresses_better_than_dashcam() {
        let fidelity = storage_fidelity();
        let park = test_frames(Dataset::Park, fidelity, 90);
        let dash = test_frames(Dataset::Dashcam, fidelity, 90);
        let park_seg = encode_segment(&park, KeyframeInterval::K50, SpeedStep::Slow).unwrap();
        let dash_seg = encode_segment(&dash, KeyframeInterval::K50, SpeedStep::Slow).unwrap();
        assert!(
            (dash_seg.payload_bytes() as f64) > 1.2 * park_seg.payload_bytes() as f64,
            "dashcam {} vs park {}",
            dash_seg.payload_bytes(),
            park_seg.payload_bytes()
        );
    }

    #[test]
    fn shorter_gops_cost_more_bytes() {
        let frames = test_frames(Dataset::Jackson, storage_fidelity(), 100);
        let long = encode_segment(&frames, KeyframeInterval::K100, SpeedStep::Medium).unwrap();
        let short = encode_segment(&frames, KeyframeInterval::K5, SpeedStep::Medium).unwrap();
        assert!(short.payload_bytes() > long.payload_bytes());
        assert_eq!(short.frame_count(), long.frame_count());
        assert_eq!(long.chunks.len(), 1);
        assert_eq!(short.chunks.len(), 20);
    }

    #[test]
    fn compression_beats_raw_for_surveillance_content() {
        let frames = test_frames(Dataset::Park, storage_fidelity(), 60);
        let seg = encode_segment(&frames, KeyframeInterval::K50, SpeedStep::Slow).unwrap();
        let raw_bytes: usize = frames.iter().map(|f| f.plane.len()).sum();
        assert!(
            seg.payload_bytes() < raw_bytes / 2,
            "encoded {} vs raw {}",
            seg.payload_bytes(),
            raw_bytes
        );
    }

    #[test]
    fn sampled_decode_skips_chunks_and_matches_full_decode() {
        let frames = test_frames(Dataset::Jackson, storage_fidelity(), 240);
        let seg = encode_segment(&frames, KeyframeInterval::K10, SpeedStep::Medium).unwrap();
        let (sampled, stats) = decode_segment_sampled(&seg, FrameSampling::S1_30).unwrap();
        // 240 frames at 1/30 sampling → 8 emitted frames.
        assert_eq!(sampled.len(), 8);
        assert_eq!(stats.frames_emitted, 8);
        assert!(stats.chunks_skipped > 0, "no chunks skipped");
        assert!(stats.frames_decoded < 240, "decoded everything anyway");
        // Emitted frames match the corresponding full-decode frames exactly.
        let full = decode_segment(&seg).unwrap();
        for s in &sampled {
            let reference = full
                .iter()
                .find(|f| f.source_index == s.source_index)
                .unwrap();
            assert_eq!(s.plane, reference.plane);
        }
    }

    #[test]
    fn sampled_decode_of_everything_equals_full_decode() {
        let frames = test_frames(Dataset::Airport, storage_fidelity(), 50);
        let seg = encode_segment(&frames, KeyframeInterval::K10, SpeedStep::Fast).unwrap();
        let (all, stats) = decode_segment_sampled(&seg, FrameSampling::Full).unwrap();
        assert_eq!(all.len(), frames.len());
        assert_eq!(stats.frames_decoded, frames.len());
        assert_eq!(stats.chunks_skipped, 0);
    }

    #[test]
    fn encode_rejects_bad_input() {
        assert!(encode_segment(&[], KeyframeInterval::K10, SpeedStep::Fast).is_err());
        let mut frames = test_frames(Dataset::Jackson, storage_fidelity(), 4);
        let other = test_frames(
            Dataset::Jackson,
            Fidelity::new(
                ImageQuality::Bad,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::Full,
            ),
            2,
        );
        frames.extend(other);
        assert!(encode_segment(&frames, KeyframeInterval::K10, SpeedStep::Fast).is_err());
    }
}
