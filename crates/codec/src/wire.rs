//! Minimal binary wire format helpers used by the segment container.
//!
//! The approved dependency list contains `serde` but no serialisation format
//! crate, so the container hand-rolls a small, explicit little-endian format
//! with these helpers. Every reader method returns a typed error instead of
//! panicking so corrupt on-disk data surfaces as
//! [`VStoreError::Corruption`].

use vstore_types::{cast, Result, VStoreError};

/// An append-only byte writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// New writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// New writer over a recycled buffer: the buffer is cleared but its
    /// capacity is kept, so a pooled buffer encodes frame after frame
    /// without reallocating once it has grown to its steady-state size.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        ByteWriter { buf }
    }

    /// Consume the writer and return the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Overwrite 4 already-written bytes at `pos` with a little-endian u32
    /// — how a length prefix is back-patched once the frame body is
    /// encoded and its length known.
    ///
    /// # Panics
    /// Panics if `pos + 4` exceeds what has been written; the caller
    /// patches a slot it reserved earlier, so an out-of-range `pos` is a
    /// programming error, not a data error.
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian f32.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a LEB128-style variable-length unsigned integer.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8; // vstore-lint: allow(checked-cast) — masked to 7 bits
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Write raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor-style byte reader with bounds checking.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(VStoreError::corruption(format!(
                "truncated record: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian f32.
    pub fn get_f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a LEB128-style variable-length unsigned integer.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(VStoreError::corruption("varint overflow"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = cast::usize_from_u64(self.get_varint()?, "byte-slice length")?;
        self.take(len)
    }

    /// Read exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

/// A simple CRC-32 (IEEE polynomial, bitwise) used to guard stored records.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 5);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 5);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25);
        assert!(r.is_exhausted());
    }

    #[test]
    fn from_vec_recycles_capacity_and_patch_overwrites_in_place() {
        let mut w = ByteWriter::new();
        w.put_u32(0); // length slot, patched below
        w.put_u64(42);
        w.patch_u32(0, 8);
        let bytes = w.into_bytes();
        let capacity = bytes.capacity();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 8);
        assert_eq!(r.get_u64().unwrap(), 42);

        // Recycling clears the contents but keeps the allocation.
        let mut w = ByteWriter::from_vec(bytes);
        assert!(w.is_empty());
        w.put_u8(9);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![9]);
        assert_eq!(bytes.capacity(), capacity);
    }

    #[test]
    fn varint_round_trip_various_magnitudes() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v, "value {v}");
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn length_prefixed_bytes_round_trip() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"hello");
        w.put_bytes(b"");
        w.put_bytes(&[9u8; 1000]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_bytes().unwrap(), b"");
        assert_eq!(r.get_bytes().unwrap().len(), 1000);
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        let err = r.get_u64().unwrap_err();
        assert!(matches!(err, VStoreError::Corruption(_)));
    }

    #[test]
    fn crc32_known_vector_and_sensitivity() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_ne!(crc32(b"123456780"), crc32(b"123456789"));
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_capacity_and_emptiness() {
        let w = ByteWriter::with_capacity(64);
        assert!(w.is_empty());
        let mut w = w;
        w.put_raw(&[1, 2, 3]);
        assert_eq!(w.len(), 3);
    }
}
