//! # vstore-ingest
//!
//! The ingestion pipeline (§2.2, Figure 1 left): incoming 720p/30 fps video
//! is transcoded into every storage format of the active configuration and
//! written, as 8-second segments, into the segment store.
//!
//! Ingestion cost (CPU-core-seconds spent transcoding) and disk traffic are
//! charged to a [`VirtualClock`](vstore_sim::VirtualClock) so experiments can
//! report the paper's per-stream figures (cores of transcoding, GB/day of
//! new video) regardless of the host machine.
//!
//! The [`live`] module layers a live streaming ingestor on top: a bounded,
//! back-pressured queue of camera segments drained by background transcode
//! workers, degrading fidelity along a declared ladder when transcoding
//! cannot keep up instead of stalling the camera.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod live;
pub mod pipeline;

pub use live::{
    DegradationLadder, LiveIngestHandle, LiveIngestor, LiveProbe, LiveStats, OfferOutcome,
};
pub use pipeline::{ErodeReport, IngestReport, IngestionPipeline};
