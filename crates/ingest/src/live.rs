//! Live streaming ingest: a bounded, back-pressured queue of live segments
//! drained by background transcode workers, with **lag-driven degradation**
//! instead of unbounded stalling (the paper's §4.3 backlog adaptation,
//! lifted from an offline knob to a live controller).
//!
//! ```text
//!  camera ──offer(segment)──► bounded queue ──► transcode workers ──► store
//!             │ (Reject: shed,          │              │
//!             │  Block: stall)          │ lag controller: level =
//!             ▼                         │   queue_depth / max_lag_segments
//!          LiveStats                    ▼
//!       (lag histogram,     degradation ladder: level 0 = full config,
//!        level transitions,  level k = coarser sampling on non-golden
//!        shed accounting)    formats, top rung = golden only
//! ```
//!
//! * **Back-pressure.** The queue never grows past
//!   `LiveIngestOptions::queue_depth`: beyond it, `offer` sheds the segment
//!   (counted in [`LiveStats::shed`], [`QueueFullPolicy::Reject`](vstore_types::QueueFullPolicy::Reject)) or
//!   blocks the camera ([`QueueFullPolicy::Block`](vstore_types::QueueFullPolicy::Block)). Memory stays bounded
//!   no matter how fast the camera produces.
//! * **Degrade, don't stall.** A lag controller watches the backlog: every
//!   `max_lag_segments` of queue depth steps the [`DegradationLadder`] one
//!   level down — coarser frame sampling on every non-golden format, then
//!   (top rung) only the golden format — and steps back up as the backlog
//!   drains. The golden format is never degraded, mirroring the erosion
//!   invariant: full-fidelity recovery stays possible.
//! * **Panic isolation & graceful drain.** Workers transcode under
//!   [`vstore_sim::catch_panic`]; a panicking transcode fails one segment,
//!   never the ingestor. [`LiveIngestHandle::shutdown`] closes the queue,
//!   drains every segment already accepted, joins the workers and returns
//!   the final [`LiveStats`].

use crate::pipeline::IngestionPipeline;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vstore_datasets::VideoSource;
use vstore_sim::sync::lock_unpoisoned;
use vstore_sim::{catch_panic, panic_message, BoundedQueue, PushError};
use vstore_types::{
    Configuration, FrameSampling, LatencyHistogram, LiveIngestOptions, Result, VStoreError,
    VideoSeconds,
};

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

/// The declared fidelity/coverage ladder live ingest walks down under lag.
///
/// Level 0 is the full configuration. Each further level coarsens the frame
/// sampling of every **non-golden** storage format by one rank (e.g. full →
/// 2/3 → 1/2 → 1/6 → 1/30); once every non-golden format is at its coarsest
/// sampling, the top rung stores **only the golden format** (fewer stored
/// formats — maximum shedding of transcode work while keeping the one
/// format every consumer can be served from). The golden format itself is
/// never touched, so recovering full fidelity later is always possible.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    levels: Vec<Configuration>,
}

impl DegradationLadder {
    /// Build the ladder for `config` (see the type docs for the rungs).
    #[must_use]
    pub fn from_config(config: &Configuration) -> Self {
        let mut levels = vec![config.clone()];
        loop {
            let prev = levels.last().expect("ladder starts non-empty"); // vstore-lint: allow(no-unwrap)
            let mut next = prev.clone();
            let mut changed = false;
            for (id, format) in next.storage_formats.iter_mut() {
                if id.is_golden() {
                    continue;
                }
                let rank = format.fidelity.sampling.rank();
                if rank > 0 {
                    format.fidelity.sampling = FrameSampling::ALL[rank - 1];
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            levels.push(next);
        }
        // Top rung: drop the non-golden formats entirely (when there are
        // any and a golden format exists to fall back to).
        let last = levels.last().expect("ladder starts non-empty"); // vstore-lint: allow(no-unwrap)
        let has_golden = last.storage_formats.keys().any(|id| id.is_golden());
        let has_other = last.storage_formats.keys().any(|id| !id.is_golden());
        if has_golden && has_other {
            let mut top = last.clone();
            top.storage_formats.retain(|id, _| id.is_golden());
            top.retrieval_speeds.retain(|id, _| id.is_golden());
            levels.push(top);
        }
        DegradationLadder { levels }
    }

    /// The deepest level (0 = no degradation possible).
    #[must_use]
    pub fn max_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// The configuration ingested at `level` (clamped to the ladder).
    #[must_use]
    pub fn level(&self, level: usize) -> &Configuration {
        &self.levels[level.min(self.max_level())]
    }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// One snapshot of a live ingestor's statistics, folded into
/// `VStore::stats_report` and carried over the serve wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveStats {
    /// Transcode workers draining the queue.
    pub workers: usize,
    /// Capacity of the bounded live segment queue.
    pub queue_capacity: usize,
    /// Segments waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub peak_queue_depth: usize,
    /// Segments the camera offered (accepted + shed + refused-after-close).
    pub offered: u64,
    /// Segments accepted onto the queue.
    pub accepted: u64,
    /// Segments shed by a full queue under [`QueueFullPolicy::Reject`](vstore_types::QueueFullPolicy::Reject).
    pub shed: u64,
    /// Segments fully transcoded and persisted.
    pub completed: u64,
    /// Segments whose transcode failed (error or panic).
    pub failed: u64,
    /// Segments whose transcode panicked (counted in `failed` too).
    pub panics: u64,
    /// Degradation level currently in force (0 = full fidelity).
    pub current_level: usize,
    /// Deepest rung of the declared ladder.
    pub max_level: usize,
    /// Lag-controller transitions to a deeper level (one per level walked).
    pub step_downs: u64,
    /// Lag-controller transitions back toward full fidelity.
    pub step_ups: u64,
    /// Segments ingested at a degraded level (level > 0).
    pub degraded_segments: u64,
    /// Video content ingested.
    pub video: VideoSeconds,
    /// Queue lag per segment: wall-clock time from offer to the start of
    /// its transcode.
    pub lag: LatencyHistogram,
    /// Completed segments per source stream name.
    pub per_source: BTreeMap<String, u64>,
}

impl LiveStats {
    /// Fraction of offered segments shed by the full queue (0.0 when idle —
    /// never NaN).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Fraction of drained segments that failed (0.0 when idle — never
    /// NaN).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        let drained = self.completed.saturating_add(self.failed);
        if drained == 0 {
            0.0
        } else {
            self.failed as f64 / drained as f64
        }
    }

    /// `true` when nothing was ever offered.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.offered == 0 && self.completed == 0
    }

    /// Fold another ingestor's statistics into this one (registry
    /// aggregation): counters saturate, peaks and levels take the max,
    /// histograms and per-source maps merge.
    pub fn accumulate(&mut self, other: &LiveStats) {
        self.workers = self.workers.saturating_add(other.workers);
        self.queue_capacity = self.queue_capacity.saturating_add(other.queue_capacity);
        self.queue_depth = self.queue_depth.saturating_add(other.queue_depth);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.offered = self.offered.saturating_add(other.offered);
        self.accepted = self.accepted.saturating_add(other.accepted);
        self.shed = self.shed.saturating_add(other.shed);
        self.completed = self.completed.saturating_add(other.completed);
        self.failed = self.failed.saturating_add(other.failed);
        self.panics = self.panics.saturating_add(other.panics);
        self.current_level = self.current_level.max(other.current_level);
        self.max_level = self.max_level.max(other.max_level);
        self.step_downs = self.step_downs.saturating_add(other.step_downs);
        self.step_ups = self.step_ups.saturating_add(other.step_ups);
        self.degraded_segments = self
            .degraded_segments
            .saturating_add(other.degraded_segments);
        self.video += other.video;
        self.lag.accumulate(&other.lag);
        for (source, count) in &other.per_source {
            let mine = self.per_source.entry(source.clone()).or_insert(0);
            *mine = mine.saturating_add(*count);
        }
    }
}

impl std::fmt::Display for LiveStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "live: {} workers, queue {}/{} (peak {}), {} offered, {} accepted, \
             {} shed ({:.0}%), {} completed, {} failed ({} panics)",
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.peak_queue_depth,
            self.offered,
            self.accepted,
            self.shed,
            self.shed_rate() * 100.0,
            self.completed,
            self.failed,
            self.panics,
        )?;
        writeln!(
            f,
            "  degradation: level {}/{}, {} down / {} up transitions, \
             {} degraded segments, {} of video",
            self.current_level,
            self.max_level,
            self.step_downs,
            self.step_ups,
            self.degraded_segments,
            self.video,
        )?;
        write!(f, "  lag: {}", self.lag)
    }
}

// ---------------------------------------------------------------------------
// The live ingestor
// ---------------------------------------------------------------------------

/// One queued live segment: which segment, and when it was offered.
struct LiveJob {
    segment_index: u64,
    offered_at: Instant,
}

/// Mutable counters behind one short-held mutex; transcoding never runs
/// under it.
struct LiveState {
    offered: u64,
    accepted: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    panics: u64,
    current_level: usize,
    step_downs: u64,
    step_ups: u64,
    degraded_segments: u64,
    video: VideoSeconds,
    lag: LatencyHistogram,
    per_source: BTreeMap<String, u64>,
    /// Segments popped but not yet fully processed — `is_idle` needs this
    /// so "queue empty" is not mistaken for "work done".
    in_flight: usize,
}

struct LiveShared {
    queue: BoundedQueue<LiveJob>,
    state: Mutex<LiveState>,
    options: LiveIngestOptions,
    ladder: DegradationLadder,
    pipeline: Arc<IngestionPipeline>,
    source: VideoSource,
}

impl LiveShared {
    fn snapshot(&self) -> LiveStats {
        let state = lock_unpoisoned(&self.state);
        LiveStats {
            workers: self.options.workers,
            queue_capacity: self.options.queue_depth,
            queue_depth: self.queue.len(),
            peak_queue_depth: self.queue.peak_depth(),
            offered: state.offered,
            accepted: state.accepted,
            shed: state.shed,
            completed: state.completed,
            failed: state.failed,
            panics: state.panics,
            current_level: state.current_level,
            max_level: self.ladder.max_level(),
            step_downs: state.step_downs,
            step_ups: state.step_ups,
            degraded_segments: state.degraded_segments,
            video: state.video,
            lag: state.lag.clone(),
            per_source: state.per_source.clone(),
        }
    }

    /// The lag controller: map the current backlog to a ladder level and
    /// record any transition. Returns the level this segment ingests at.
    fn controlled_level(&self, queue_depth: usize) -> usize {
        let target = (queue_depth / self.options.max_lag_segments).min(self.ladder.max_level());
        let mut state = lock_unpoisoned(&self.state);
        let current = state.current_level;
        if target > current {
            state.step_downs = state.step_downs.saturating_add((target - current) as u64);
        } else if target < current {
            state.step_ups = state.step_ups.saturating_add((current - target) as u64);
        }
        state.current_level = target;
        target
    }
}

/// Namespace for starting a live ingestor; see [`LiveIngestor::start`].
pub struct LiveIngestor;

impl LiveIngestor {
    /// Start a live ingestor for `source`: validate `options`, build the
    /// degradation ladder for `config`, then spawn `options.workers`
    /// transcode threads draining the bounded segment queue through
    /// `pipeline`.
    pub fn start(
        pipeline: Arc<IngestionPipeline>,
        source: VideoSource,
        config: &Configuration,
        options: LiveIngestOptions,
    ) -> Result<LiveIngestHandle> {
        options.validate()?;
        if config.storage_formats.is_empty() {
            return Err(VStoreError::InvalidState(
                "configuration has no storage formats to ingest into".into(),
            ));
        }
        let shared = Arc::new(LiveShared {
            queue: BoundedQueue::new(options.queue_depth),
            state: Mutex::new(LiveState {
                offered: 0,
                accepted: 0,
                shed: 0,
                completed: 0,
                failed: 0,
                panics: 0,
                current_level: 0,
                step_downs: 0,
                step_ups: 0,
                degraded_segments: 0,
                video: VideoSeconds(0.0),
                lag: LatencyHistogram::default(),
                per_source: BTreeMap::new(),
                in_flight: 0,
            }),
            options,
            ladder: DegradationLadder::from_config(config),
            pipeline,
            source,
        });
        let mut workers = Vec::with_capacity(options.workers);
        for i in 0..options.workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("vstore-live-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Wind down the workers already spawned instead of
                    // leaking them parked on the queue forever.
                    shared.queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(VStoreError::Io(e));
                }
            }
        }
        Ok(LiveIngestHandle { shared, workers })
    }
}

/// The outcome of offering a batch of segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfferOutcome {
    /// Segments accepted onto the queue.
    pub accepted: u64,
    /// Segments shed by the full queue under [`QueueFullPolicy::Reject`](vstore_types::QueueFullPolicy::Reject).
    pub shed: u64,
}

/// A running live ingestor. Dropping the handle shuts it down gracefully
/// (close, drain, join); call [`shutdown`](Self::shutdown) to do the same
/// explicitly and receive the final statistics.
pub struct LiveIngestHandle {
    shared: Arc<LiveShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for LiveIngestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveIngestHandle")
            .field("source", &self.shared.source.name())
            .field("workers", &self.shared.options.workers)
            .field("queue_depth", &self.queue_depth())
            .field("queue_capacity", &self.shared.options.queue_depth)
            .finish()
    }
}

impl LiveIngestHandle {
    /// Offer one live segment. Returns `Ok(true)` when the segment was
    /// accepted, `Ok(false)` when a full queue shed it under
    /// [`QueueFullPolicy::Reject`](vstore_types::QueueFullPolicy::Reject) (counted in [`LiveStats::shed`]), and
    /// [`VStoreError::InvalidState`] once shutdown has begun. Under
    /// [`QueueFullPolicy::Block`](vstore_types::QueueFullPolicy::Block) a full queue blocks the camera instead of
    /// shedding — the offering thread stalls, the store never does.
    pub fn offer(&self, segment_index: u64) -> Result<bool> {
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.offered = state.offered.saturating_add(1);
        }
        let job = LiveJob {
            segment_index,
            offered_at: Instant::now(),
        };
        match self.shared.queue.push(job, self.shared.options.on_full) {
            Ok(()) => {
                let depth = self.shared.queue.len();
                let mut state = lock_unpoisoned(&self.shared.state);
                state.accepted = state.accepted.saturating_add(1);
                drop(state);
                // Step the ladder down as soon as the backlog crosses a
                // threshold — not only when a worker next picks up work.
                self.shared.controlled_level(depth);
                Ok(true)
            }
            Err(PushError::Full(_)) => {
                let mut state = lock_unpoisoned(&self.shared.state);
                state.shed = state.shed.saturating_add(1);
                Ok(false)
            }
            Err(PushError::Closed { .. }) => Err(VStoreError::InvalidState(
                "live ingestor is shutting down".into(),
            )),
        }
    }

    /// Offer a contiguous range of segments (e.g. one
    /// [`LiveSource::poll`](vstore_datasets::LiveSource::poll) result),
    /// tallying accepts and sheds.
    pub fn offer_range(&self, segments: std::ops::Range<u64>) -> Result<OfferOutcome> {
        let mut outcome = OfferOutcome::default();
        for segment in segments {
            if self.offer(segment)? {
                outcome.accepted += 1;
            } else {
                outcome.shed += 1;
            }
        }
        Ok(outcome)
    }

    /// Segments currently waiting in the queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// `true` when the queue is empty and no worker is mid-segment — every
    /// accepted segment has been fully processed.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.shared.queue.is_empty() && lock_unpoisoned(&self.shared.state).in_flight == 0
    }

    /// Block until [`is_idle`](Self::is_idle) — the backlog is fully
    /// drained. The ingestor stays open; more segments can be offered
    /// afterwards.
    pub fn wait_idle(&self) {
        while !self.is_idle() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// A statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> LiveStats {
        self.shared.snapshot()
    }

    /// A cheap, cloneable probe reading this ingestor's statistics (what
    /// `VStore::stats_report` folds in).
    #[must_use]
    pub fn probe(&self) -> LiveProbe {
        LiveProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful shutdown: refuse new offers, drain every segment already
    /// accepted, join the workers and return the final statistics — zero
    /// accepted segments are lost.
    pub fn shutdown(mut self) -> LiveStats {
        self.shutdown_inner();
        self.shared.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            // Workers never unwind (segments transcode under catch_panic),
            // so the join only fails if the runtime killed the thread.
            let _ = worker.join();
        }
    }
}

impl Drop for LiveIngestHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A cloneable, read-only probe of one live ingestor's statistics.
#[derive(Clone)]
pub struct LiveProbe {
    shared: Arc<LiveShared>,
}

impl LiveProbe {
    /// A statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> LiveStats {
        self.shared.snapshot()
    }

    /// `true` while the ingestor is accepting segments; `false` once
    /// shutdown has begun. Registries keying reports off probes use this to
    /// retire dead ingestors instead of summing their (no longer
    /// provisioned) workers and queue capacity forever.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.shared.queue.is_open()
    }
}

/// The transcode loop of one worker thread.
fn worker_loop(shared: &LiveShared) {
    loop {
        // `pop` blocks while the queue is open and returns `None` only once
        // it is closed and drained: the graceful exit.
        let Some(job) = shared.queue.pop() else {
            return;
        };

        let lag_us = u64::try_from(job.offered_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        // The lag controller reads the backlog *behind* this segment: a
        // drained queue steps fidelity back up before the last segment is
        // even transcoded.
        let level = shared.controlled_level(shared.queue.len());
        let config = shared.ladder.level(level);
        {
            let mut state = lock_unpoisoned(&shared.state);
            state.in_flight += 1;
            state.lag.record(lag_us);
        }

        // Panic isolation: a panicking transcode fails one segment; the
        // worker survives to drain the rest of the stream.
        let outcome = match catch_panic(|| {
            shared
                .pipeline
                .ingest_segments(&shared.source, job.segment_index, 1, config)
        }) {
            Ok(result) => result.map(Some),
            Err(payload) => Err(VStoreError::InvalidState(format!(
                "live ingest worker panicked: {}",
                panic_message(&payload)
            ))),
        };
        let was_panic = matches!(&outcome, Err(VStoreError::InvalidState(msg))
            if msg.starts_with("live ingest worker panicked"));

        let mut state = lock_unpoisoned(&shared.state);
        state.in_flight -= 1;
        match outcome {
            Ok(report) => {
                state.completed = state.completed.saturating_add(1);
                if level > 0 {
                    state.degraded_segments = state.degraded_segments.saturating_add(1);
                }
                if let Some(report) = report {
                    state.video += report.video;
                }
                let source = shared.source.name().to_owned();
                let count = state.per_source.entry(source).or_insert(0);
                *count = count.saturating_add(1);
            }
            Err(_) => {
                state.failed = state.failed.saturating_add(1);
                if was_panic {
                    state.panics = state.panics.saturating_add(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests_support::two_format_config;
    use vstore_codec::Transcoder;
    use vstore_datasets::Dataset;
    use vstore_sim::VirtualClock;
    use vstore_storage::SegmentStore;
    use vstore_types::{FormatId, QueueFullPolicy};

    fn live_pipeline() -> Arc<IngestionPipeline> {
        Arc::new(IngestionPipeline::new(
            Arc::new(SegmentStore::open_mem_with_shards(2).unwrap()),
            Transcoder::default(),
            VirtualClock::new(),
        ))
    }

    #[test]
    fn ladder_coarsens_sampling_then_drops_to_golden_only() {
        let config = two_format_config();
        let ladder = DegradationLadder::from_config(&config);
        // FormatId(1) starts at Full sampling (rank 4): 4 coarsening rungs
        // plus the golden-only rung.
        assert_eq!(ladder.max_level(), 5);
        assert_eq!(
            ladder.level(0).storage_formats[&FormatId(1)]
                .fidelity
                .sampling,
            FrameSampling::Full
        );
        assert_eq!(
            ladder.level(2).storage_formats[&FormatId(1)]
                .fidelity
                .sampling,
            FrameSampling::S1_2
        );
        assert_eq!(
            ladder.level(4).storage_formats[&FormatId(1)]
                .fidelity
                .sampling,
            FrameSampling::S1_30
        );
        let top = ladder.level(5);
        assert_eq!(top.storage_formats.len(), 1);
        assert!(top.storage_formats.contains_key(&FormatId::GOLDEN));
        // The golden format is identical on every rung.
        for level in 0..=ladder.max_level() {
            assert_eq!(
                ladder.level(level).storage_formats[&FormatId::GOLDEN],
                config.storage_formats[&FormatId::GOLDEN],
                "golden degraded at level {level}"
            );
        }
        // Beyond the ladder clamps to the top rung.
        assert_eq!(
            ladder.level(99).storage_formats.len(),
            top.storage_formats.len()
        );
    }

    #[test]
    fn start_validates_options() {
        let err = LiveIngestor::start(
            live_pipeline(),
            VideoSource::new(Dataset::Jackson),
            &two_format_config(),
            LiveIngestOptions::default().with_workers(0),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn offered_segments_are_ingested_and_counted() {
        let pipeline = live_pipeline();
        let handle = LiveIngestor::start(
            Arc::clone(&pipeline),
            VideoSource::new(Dataset::Jackson),
            &two_format_config(),
            LiveIngestOptions::sequential().with_queue_depth(8),
        )
        .unwrap();
        let outcome = handle.offer_range(0..3).unwrap();
        assert_eq!(outcome.accepted, 3);
        let stats = handle.shutdown();
        assert_eq!(stats.offered, 3);
        assert_eq!(stats.completed, 3, "shutdown must drain the queue");
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.lag.count(), 3);
        assert_eq!(stats.per_source.get("jackson"), Some(&3));
        assert!((stats.video.seconds() - 24.0).abs() < 1e-9);
        // 3 segments × 2 formats in the store.
        assert_eq!(pipeline.store().len(), 6);
    }

    #[test]
    fn reject_policy_sheds_and_accounts() {
        let pipeline = live_pipeline();
        // No workers draining fast enough to matter: queue of 1, and the
        // single worker is busy with the first segment almost immediately,
        // so offering a burst must shed.
        let handle = LiveIngestor::start(
            pipeline,
            VideoSource::new(Dataset::Park),
            &two_format_config(),
            LiveIngestOptions::sequential(),
        )
        .unwrap();
        let outcome = handle.offer_range(0..12).unwrap();
        assert_eq!(outcome.accepted + outcome.shed, 12);
        assert!(outcome.shed > 0, "a queue of 1 must shed under a 12-burst");
        let stats = handle.shutdown();
        assert_eq!(stats.offered, 12);
        assert_eq!(stats.shed, outcome.shed);
        assert_eq!(stats.completed, outcome.accepted);
        assert!(stats.shed_rate() > 0.0);
        assert!(stats.peak_queue_depth <= 1, "bounded queue overflowed");
    }

    #[test]
    fn offers_after_shutdown_fail_cleanly() {
        let pipeline = live_pipeline();
        let handle = LiveIngestor::start(
            pipeline,
            VideoSource::new(Dataset::Tucson),
            &two_format_config(),
            LiveIngestOptions::sequential(),
        )
        .unwrap();
        let probe = handle.probe();
        assert!(probe.is_live());
        drop(handle);
        assert!(!probe.is_live());
        assert!(probe.stats().is_idle());
    }

    #[test]
    fn lag_controller_steps_down_and_recovers() {
        let pipeline = live_pipeline();
        let handle = LiveIngestor::start(
            pipeline,
            VideoSource::new(Dataset::Park),
            &two_format_config(),
            LiveIngestOptions::sequential()
                .with_queue_depth(16)
                .with_on_full(QueueFullPolicy::Block)
                .with_max_lag_segments(2),
        )
        .unwrap();
        // Flood: one worker, 10 segments — the backlog forces at least one
        // step down while the worker chews through it.
        let outcome = handle.offer_range(0..10).unwrap();
        assert_eq!(outcome.accepted, 10);
        handle.wait_idle();
        let stats = handle.stats();
        assert!(stats.step_downs > 0, "backlog never degraded: {stats}");
        assert!(stats.step_ups > 0, "drain never recovered: {stats}");
        assert_eq!(stats.current_level, 0, "idle must mean full fidelity");
        assert!(stats.degraded_segments > 0);
        let final_stats = handle.shutdown();
        assert_eq!(final_stats.completed, 10);
    }

    #[test]
    fn stats_display_is_nan_free_when_idle() {
        let stats = LiveStats::default();
        assert_eq!(stats.shed_rate(), 0.0);
        assert_eq!(stats.failure_rate(), 0.0);
        let rendered = stats.to_string();
        assert!(rendered.contains("(0%)"), "{rendered}");
        assert!(rendered.contains("idle"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");
    }

    #[test]
    fn accumulate_merges_and_saturates() {
        let mut a = LiveStats {
            offered: u64::MAX,
            accepted: 1,
            current_level: 1,
            per_source: BTreeMap::from([("cam-a".to_owned(), 2u64)]),
            ..LiveStats::default()
        };
        let b = LiveStats {
            offered: 5,
            accepted: 2,
            current_level: 3,
            peak_queue_depth: 7,
            per_source: BTreeMap::from([("cam-a".to_owned(), 3u64), ("cam-b".to_owned(), 1u64)]),
            ..LiveStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.offered, u64::MAX, "saturating, not wrapping");
        assert_eq!(a.accepted, 3);
        assert_eq!(a.current_level, 3, "aggregate reports the worst level");
        assert_eq!(a.peak_queue_depth, 7);
        assert_eq!(a.per_source.get("cam-a"), Some(&5));
        assert_eq!(a.per_source.get("cam-b"), Some(&1));
    }
}
