//! The ingestion pipeline implementation.

use std::collections::BTreeMap;
use std::sync::Arc;
use vstore_codec::{SegmentMeta, Transcoder};
use vstore_datasets::{SceneFrame, VideoSource};
use vstore_sim::{scoped_map, ResourceKind, VirtualClock};
use vstore_storage::{SegmentKey, SegmentReader, SegmentStore};
use vstore_types::{
    ByteSize, Configuration, CoreSeconds, FormatId, Result, StorageFormat, VStoreError,
    VideoSeconds,
};

/// The report of one ingestion run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Video content ingested.
    pub video: VideoSeconds,
    /// Segments written (across all storage formats).
    pub segments_written: usize,
    /// Transcoding work spent.
    pub transcode_work: CoreSeconds,
    /// Bytes written per storage format, as predicted by the calibrated cost
    /// model (the figure experiments report).
    pub modeled_bytes: BTreeMap<FormatId, ByteSize>,
    /// Bytes actually written to the segment store.
    pub actual_bytes: ByteSize,
}

/// The report of one erosion step: what actually happened to the planned
/// fraction of segments. With no cold tier attached every planned segment
/// is **deleted** (the pre-tiering behaviour); with one, every planned
/// segment is **demoted** to cold storage instead — reversible by a
/// read-through promotion. The golden format never appears in either
/// column: it is never eroded and never leaves the hot tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErodeReport {
    /// The video age (days) whose erosion step was applied.
    pub age_days: u32,
    /// Segments deleted outright (no cold tier, or tiering disabled).
    pub segments_deleted: usize,
    /// Bytes deleted outright.
    pub deleted_bytes: ByteSize,
    /// Segments demoted to the cold tier instead of deleted.
    pub segments_demoted: usize,
    /// Bytes demoted to the cold tier.
    pub demoted_bytes: ByteSize,
}

impl ErodeReport {
    /// Segments the step removed from the hot store, deleted and demoted
    /// alike.
    #[must_use]
    pub fn total_segments(&self) -> usize {
        self.segments_deleted + self.segments_demoted
    }
}

impl std::fmt::Display for ErodeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "erode @{}d: {} deleted ({}), {} demoted ({})",
            self.age_days,
            self.segments_deleted,
            self.deleted_bytes,
            self.segments_demoted,
            self.demoted_bytes,
        )
    }
}

impl IngestReport {
    /// Total modelled bytes across all storage formats.
    pub fn total_modeled_bytes(&self) -> ByteSize {
        self.modeled_bytes.values().copied().sum()
    }

    /// Average CPU cores kept busy transcoding, assuming ingestion keeps up
    /// with real time (the paper's "CPU utilisation" of Figure 11(c): 100 %
    /// = one core).
    pub fn transcode_cores(&self) -> f64 {
        self.transcode_work
            .cores_over(self.video.seconds().max(1e-9))
    }

    /// Storage growth rate in GB per day of continuous ingestion
    /// (Figure 11(b)).
    pub fn gb_per_day(&self) -> f64 {
        let per_second = self.total_modeled_bytes().bytes() as f64 / self.video.seconds().max(1e-9);
        per_second * 86_400.0 / 1e9
    }
}

/// One unit of ingest work: transcode one segment into one storage format
/// and persist it. Scene frames are generated once per segment and shared
/// across its formats.
struct IngestTask {
    segment: u64,
    id: FormatId,
    format: StorageFormat,
    scenes: Arc<Vec<SceneFrame>>,
}

/// The ingestion pipeline: transcodes incoming segments into every storage
/// format of the configuration and persists them.
///
/// The per-segment transcode work for the K storage formats is fanned
/// across a scoped worker pool of up to [`workers`](Self::with_workers)
/// threads, further capped by the ingestion CPU budget when one is set —
/// Figure 11(c)-style CPU accounting stays truthful because the pipeline
/// never runs more concurrent transcodes than the budget pays for. Reports
/// are merged in deterministic `(segment, format)` order, so they are
/// byte-identical to the sequential (`workers = 1`) path.
///
/// All writes (puts and erosion deletes) flow through a [`SegmentReader`]
/// so that, when the deployment shares a caching reader between ingestion
/// and queries, every overwrite and erosion invalidates the cached entries
/// for the key — an erode-then-read can never serve stale bytes.
pub struct IngestionPipeline {
    reader: Arc<SegmentReader>,
    transcoder: Transcoder,
    clock: VirtualClock,
    workers: usize,
    budget_cores: Option<f64>,
}

impl IngestionPipeline {
    /// A sequential pipeline (one worker) writing into the given store
    /// through a passthrough (non-caching) reader.
    pub fn new(store: Arc<SegmentStore>, transcoder: Transcoder, clock: VirtualClock) -> Self {
        IngestionPipeline {
            reader: Arc::new(SegmentReader::disabled(store)),
            transcoder,
            clock,
            workers: 1,
            budget_cores: None,
        }
    }

    /// Write through the given (possibly caching, possibly shared)
    /// [`SegmentReader`] so puts and erosion deletes invalidate its cache.
    /// The reader must front the same store this pipeline was built over.
    ///
    /// # Panics
    ///
    /// Panics when `reader` fronts a different store instance.
    pub fn with_reader(mut self, reader: Arc<SegmentReader>) -> Self {
        assert!(
            Arc::ptr_eq(reader.store(), self.reader.store()),
            "SegmentReader fronts a different store than this pipeline"
        );
        self.reader = reader;
        self
    }

    /// Fan transcode work across up to `workers` threads (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Cap parallelism by an ingestion CPU budget in cores (§4.3): the
    /// pipeline never runs more concurrent transcodes than `cores` rounded
    /// up. `None` leaves only the worker cap.
    pub fn with_ingest_budget(mut self, cores: Option<f64>) -> Self {
        self.budget_cores = cores;
        self
    }

    /// The configured worker cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The parallelism actually used: the worker cap, further limited by the
    /// ingestion CPU budget when one is set.
    pub fn effective_workers(&self) -> usize {
        let budget_cap = match self.budget_cores {
            Some(cores) if cores > 0.0 => (cores.ceil() as usize).max(1),
            Some(_) => 1,
            None => usize::MAX,
        };
        self.workers.min(budget_cap).max(1)
    }

    /// The segment store being written to.
    pub fn store(&self) -> &Arc<SegmentStore> {
        self.reader.store()
    }

    /// The virtual clock charged by this pipeline.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The storage formats of a configuration, keyed by id.
    fn formats_of(config: &Configuration) -> Vec<(FormatId, StorageFormat)> {
        config
            .storage_formats
            .iter()
            .map(|(id, sf)| (*id, *sf))
            .collect()
    }

    /// Ingest one 8-second segment of a stream into every storage format of
    /// the configuration.
    pub fn ingest_segment(
        &self,
        source: &VideoSource,
        segment_index: u64,
        config: &Configuration,
    ) -> Result<IngestReport> {
        self.ingest_segments(source, segment_index, 1, config)
    }

    /// Ingest a contiguous range of segments.
    ///
    /// Every `(segment, storage format)` transcode is one task on the worker
    /// pool; clock charges and the report are applied on the calling thread
    /// in `(segment, format)` order, so the result is identical to the
    /// sequential path regardless of parallelism.
    pub fn ingest_segments(
        &self,
        source: &VideoSource,
        first_segment: u64,
        count: u64,
        config: &Configuration,
    ) -> Result<IngestReport> {
        let formats = Self::formats_of(config);
        if formats.is_empty() {
            return Err(VStoreError::InvalidState(
                "configuration has no storage formats to ingest into".into(),
            ));
        }
        if first_segment.checked_add(count).is_none() {
            return Err(VStoreError::invalid_argument(
                "ingest segment range overflows u64",
            ));
        }
        let motion = source.motion_intensity();
        let stream = source.name().to_owned();
        let workers = self.effective_workers();

        // Fan (segment, format) tasks across the pool one window (of one
        // task per worker) at a time: memory stays bounded by the in-flight
        // window — scenes are generated per segment and shared across its
        // formats via `Arc` — and charges, report fields and errors are
        // applied in `(segment, format)` order after each window. With one
        // worker the window is a single task, reproducing the sequential
        // path's charge and error order exactly.
        let mut report = IngestReport::default();
        let mut pending: Vec<IngestTask> = Vec::with_capacity(workers);
        for segment in first_segment..first_segment + count {
            let scenes = Arc::new(source.segment(segment));
            report.video += VideoSeconds(scenes.len() as f64 / 30.0);
            for (id, format) in &formats {
                pending.push(IngestTask {
                    segment,
                    id: *id,
                    format: *format,
                    scenes: Arc::clone(&scenes),
                });
                if pending.len() >= workers {
                    self.run_ingest_window(
                        std::mem::take(&mut pending),
                        &stream,
                        motion,
                        &mut report,
                    )?;
                }
            }
        }
        self.run_ingest_window(pending, &stream, motion, &mut report)?;
        Ok(report)
    }

    /// Transcode and persist one window of tasks in parallel, then apply
    /// clock charges and report accounting in task order.
    fn run_ingest_window(
        &self,
        window: Vec<IngestTask>,
        stream: &str,
        motion: f64,
        report: &mut IngestReport,
    ) -> Result<()> {
        struct TaskOutput {
            id: FormatId,
            encode_core_seconds: f64,
            modeled_bytes: ByteSize,
            actual_bytes: ByteSize,
        }
        // Captured explicitly: the pool threads below have their own TLS,
        // so the caller's installed trace context does not propagate.
        let trace = vstore_obs::current();
        let outputs = scoped_map(
            window,
            self.effective_workers(),
            |_, task| -> Result<TaskOutput> {
                let transcode_started = std::time::Instant::now();
                let out = self
                    .transcoder
                    .transcode_segment(&task.scenes, &task.format, motion)?;
                trace.record_since("ingest.transcode", transcode_started);
                let bytes = out.data.to_bytes();
                let key = SegmentKey::new(stream, task.id, task.segment);
                self.reader.put(&key, &bytes)?;
                // Persist the compressed-domain change scores next to the
                // segment so the query planner can skip static segments
                // without fetching them (see `vstore_codec::meta`).
                let meta = SegmentMeta::from_segment(&out.data)?;
                self.reader
                    .store()
                    .put_segment_meta(&key, &meta.to_bytes())?;
                Ok(TaskOutput {
                    id: task.id,
                    encode_core_seconds: out.encode_core_seconds,
                    modeled_bytes: out.modeled_bytes,
                    actual_bytes: ByteSize(bytes.len() as u64),
                })
            },
        );
        // Charge every task that persisted — including ones ordered after a
        // failing task, which parallel execution has already run — so the
        // ledger always matches store contents; the first error (in task
        // order) is surfaced afterwards.
        let mut first_error = None;
        for output in outputs {
            let out = match output {
                Ok(out) => out,
                Err(e) => {
                    first_error.get_or_insert(e);
                    continue;
                }
            };
            self.clock
                .charge_background_seconds(ResourceKind::TranscodeCpu, out.encode_core_seconds);
            self.clock
                .charge_bytes(ResourceKind::DiskWrite, out.actual_bytes);
            self.clock
                .charge_bytes(ResourceKind::DiskSpace, out.modeled_bytes);
            report.segments_written += 1;
            report.transcode_work += CoreSeconds(out.encode_core_seconds);
            *report.modeled_bytes.entry(out.id).or_insert(ByteSize::ZERO) += out.modeled_bytes;
            report.actual_bytes += out.actual_bytes;
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Apply one age step of the erosion plan to a stream, oldest segments
    /// first, from each non-golden storage format.
    ///
    /// With no cold tier attached to the reader, the planned fraction is
    /// **deleted** — the pre-tiering behaviour, byte for byte. With a
    /// [`TierEngine`](vstore_storage::TierEngine) attached, the same
    /// segments are **demoted** instead: enqueued onto the engine's bounded
    /// migration queue (back-pressure applies) and moved to the cold store
    /// by its background workers; this call returns once the batch has
    /// drained. Either way the golden format is untouched — it is never
    /// eroded and never leaves the hot tier.
    pub fn apply_erosion(
        &self,
        stream: &str,
        config: &Configuration,
        age_days: u32,
    ) -> Result<ErodeReport> {
        let mut report = ErodeReport {
            age_days,
            ..ErodeReport::default()
        };
        let step = match config.erosion.step(age_days) {
            Some(step) => step.clone(),
            None => return Ok(report),
        };
        let tier = self.reader.tier();
        let mut demotions = Vec::new();
        for (id, fraction) in &step.deleted {
            if id.is_golden() {
                continue;
            }
            let keys = self.store().segments_of(stream, *id);
            let planned = (keys.len() as f64 * fraction.value()).floor() as usize;
            for key in keys.iter().take(planned) {
                match &tier {
                    Some(_) => demotions.push(key.clone()),
                    None => {
                        let bytes = self.store().value_len(key).unwrap_or(0);
                        // Through the reader: erosion must drop cached
                        // entries too. The sidecar dies with the segment
                        // (demotion, by contrast, keeps it — the segment
                        // still exists, just cold).
                        self.reader.delete(key)?;
                        self.store().delete_segment_meta(key)?;
                        report.segments_deleted += 1;
                        report.deleted_bytes += ByteSize(bytes);
                    }
                }
            }
        }
        if let Some(engine) = tier {
            let batch = engine.demote_batch(demotions)?;
            report.segments_demoted = batch.segments;
            report.demoted_bytes = ByteSize(batch.bytes);
        }
        Ok(report)
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Fixtures shared by the pipeline and live-ingest unit tests.
    use std::collections::BTreeMap as Map;
    use vstore_types::{
        CodingOption, Configuration, Consumer, ConsumptionFormat, ErosionPlan, Fidelity, FormatId,
        OperatorKind, Speed, StorageFormat, Subscription,
    };

    /// A golden (smallest-coded ingestion fidelity) format plus one raw
    /// 200p full-sampling format, with a single FullNN subscription and no
    /// erosion — the canonical two-format ingest configuration.
    pub(crate) fn two_format_config() -> Configuration {
        let golden = StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST);
        let raw = StorageFormat::new(
            Fidelity::new(
                vstore_types::ImageQuality::Best,
                vstore_types::CropFactor::C100,
                vstore_types::Resolution::R200,
                vstore_types::FrameSampling::Full,
            ),
            CodingOption::Raw,
        );
        let mut storage_formats = Map::new();
        storage_formats.insert(FormatId::GOLDEN, golden);
        storage_formats.insert(FormatId(1), raw);
        let mut retrieval_speeds = Map::new();
        retrieval_speeds.insert(FormatId::GOLDEN, Speed(23.0));
        retrieval_speeds.insert(FormatId(1), Speed(1100.0));
        Configuration {
            storage_formats,
            retrieval_speeds,
            subscriptions: vec![Subscription {
                consumer: Consumer::new(OperatorKind::FullNN, 0.9),
                consumption: ConsumptionFormat::new(Fidelity::INGESTION),
                consumption_speed: Speed(4.0),
                expected_accuracy: 1.0,
                storage: FormatId::GOLDEN,
                retrieval_speed: Speed(23.0),
            }],
            erosion: ErosionPlan::no_erosion(10, 0.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::two_format_config;
    use super::*;
    use std::collections::BTreeMap as Map;
    use vstore_datasets::Dataset;
    use vstore_types::{ErosionPlan, ErosionStep, Fraction};

    fn pipeline(tag: &str) -> IngestionPipeline {
        IngestionPipeline::new(
            Arc::new(SegmentStore::open_temp(tag).unwrap()),
            Transcoder::default(),
            VirtualClock::new(),
        )
    }

    #[test]
    fn ingest_writes_one_segment_per_format() {
        let p = pipeline("ingest-basic");
        let source = VideoSource::new(Dataset::Jackson);
        let config = two_format_config();
        let report = p.ingest_segment(&source, 0, &config).unwrap();
        assert_eq!(report.segments_written, 2);
        assert!((report.video.seconds() - 8.0).abs() < 1e-9);
        assert!(
            report.transcode_cores() > 0.5,
            "cores {}",
            report.transcode_cores()
        );
        assert!(report.gb_per_day() > 1.0);
        assert_eq!(p.store().len(), 2);
        assert!(p
            .store()
            .contains(&SegmentKey::new("jackson", FormatId::GOLDEN, 0)));
        assert!(p
            .store()
            .contains(&SegmentKey::new("jackson", FormatId(1), 0)));
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    #[test]
    fn ingest_multiple_segments_accumulates() {
        let p = pipeline("ingest-multi");
        let source = VideoSource::new(Dataset::Park);
        let config = two_format_config();
        let report = p.ingest_segments(&source, 0, 3, &config).unwrap();
        assert_eq!(report.segments_written, 6);
        assert!((report.video.seconds() - 24.0).abs() < 1e-9);
        assert_eq!(p.store().segments_of("park", FormatId::GOLDEN).len(), 3);
        let usage = p.clock().usage();
        assert!(usage.transcode_work().0 > 0.0);
        assert!(usage.bytes(ResourceKind::DiskWrite).bytes() > 0);
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    #[test]
    fn stored_bytes_round_trip_through_the_store() {
        let p = pipeline("ingest-roundtrip");
        let source = VideoSource::new(Dataset::Dashcam);
        let config = two_format_config();
        p.ingest_segment(&source, 2, &config).unwrap();
        let key = SegmentKey::new("dashcam", FormatId(1), 2);
        let bytes = p.store().get(&key).unwrap().unwrap();
        let segment = vstore_codec::SegmentData::from_bytes(&bytes).unwrap();
        assert_eq!(segment.frame_count(), 240);
        assert!(segment.storage_format().coding.is_raw());
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    #[test]
    fn erosion_deletes_planned_fraction_but_never_golden() {
        let p = pipeline("ingest-erosion");
        let source = VideoSource::new(Dataset::Airport);
        let mut config = two_format_config();
        p.ingest_segments(&source, 0, 4, &config).unwrap();
        // Plan: at age 3 days, half of SF1 is gone.
        let mut deleted = Map::new();
        deleted.insert(FormatId(1), Fraction::new(0.5));
        config.erosion.steps[2] = ErosionStep {
            age_days: 3,
            deleted,
            overall_relative_speed: 0.8,
        };
        let report = p.apply_erosion("airport", &config, 3).unwrap();
        assert_eq!(report.segments_deleted, 2);
        assert_eq!(report.total_segments(), 2);
        assert!(report.deleted_bytes.bytes() > 0, "{report}");
        assert_eq!(
            report.segments_demoted, 0,
            "no cold tier: delete, not demote"
        );
        assert_eq!(report.demoted_bytes, ByteSize::ZERO);
        assert_eq!(p.store().segments_of("airport", FormatId(1)).len(), 2);
        assert_eq!(p.store().segments_of("airport", FormatId::GOLDEN).len(), 4);
        // Ages without planned deletion are a no-op.
        assert_eq!(
            p.apply_erosion("airport", &config, 1).unwrap(),
            ErodeReport {
                age_days: 1,
                ..ErodeReport::default()
            }
        );
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    /// The tiering acceptance path at the pipeline level: with a cold tier
    /// attached, the same erosion step demotes instead of deleting, the
    /// golden format never leaves the hot tier, and the report says which
    /// happened.
    #[test]
    fn erosion_with_cold_tier_demotes_instead_of_deleting() {
        use vstore_storage::{MemBackend, TierEngine, TierOptions};

        let store = Arc::new(SegmentStore::open_mem_with_shards(4).unwrap());
        let reader = Arc::new(SegmentReader::new(Arc::clone(&store), 0, 0));
        let cold = Arc::new(
            SegmentStore::open_with_backend(
                Arc::new(vstore_storage::ColdBackend::new(Arc::new(MemBackend::new())).unwrap()),
                1,
            )
            .unwrap(),
        );
        let engine = TierEngine::start(
            Arc::clone(&reader),
            Arc::clone(&cold),
            TierOptions::cold_mem(),
        )
        .unwrap();
        reader.attach_tier(&engine);
        let p = IngestionPipeline::new(
            Arc::clone(&store),
            Transcoder::default(),
            VirtualClock::new(),
        )
        .with_reader(Arc::clone(&reader));

        let source = VideoSource::new(Dataset::Airport);
        let mut config = two_format_config();
        p.ingest_segments(&source, 0, 4, &config).unwrap();
        let mut deleted = Map::new();
        deleted.insert(FormatId(1), Fraction::new(0.5));
        config.erosion.steps[2] = ErosionStep {
            age_days: 3,
            deleted,
            overall_relative_speed: 0.8,
        };
        let report = p.apply_erosion("airport", &config, 3).unwrap();
        assert_eq!(report.segments_demoted, 2, "{report}");
        assert!(report.demoted_bytes.bytes() > 0);
        assert_eq!(report.segments_deleted, 0, "demote, not delete");
        assert_eq!(report.deleted_bytes, ByteSize::ZERO);
        // The demoted segments are out of the hot store but intact cold;
        // golden is untouched — it never leaves the hot tier.
        assert_eq!(p.store().segments_of("airport", FormatId(1)).len(), 2);
        assert_eq!(p.store().segments_of("airport", FormatId::GOLDEN).len(), 4);
        assert_eq!(cold.segments_of("airport", FormatId(1)).len(), 2);
        assert!(cold.segments_of("airport", FormatId::GOLDEN).is_empty());
        // A read of a demoted segment promotes it back, byte-identical.
        let demoted_key = &cold.segments_of("airport", FormatId(1))[0];
        let (bytes, source_tier) = reader.get(demoted_key).unwrap().unwrap();
        assert_eq!(source_tier, vstore_storage::ReadSource::Cold);
        assert!(p.store().contains(demoted_key));
        let (again, _) = reader.get(demoted_key).unwrap().unwrap();
        assert_eq!(*bytes, *again, "promotion must be byte-identical");
    }

    #[test]
    fn empty_configuration_is_rejected() {
        let p = pipeline("ingest-empty");
        let source = VideoSource::new(Dataset::Tucson);
        let config = Configuration {
            storage_formats: Map::new(),
            retrieval_speeds: Map::new(),
            subscriptions: vec![],
            erosion: ErosionPlan::no_erosion(1, 0.1),
        };
        assert!(p.ingest_segment(&source, 0, &config).is_err());
        std::fs::remove_dir_all(p.store().dir()).ok();
    }
}
