//! The ingestion pipeline implementation.

use std::collections::BTreeMap;
use std::sync::Arc;
use vstore_codec::Transcoder;
use vstore_datasets::VideoSource;
use vstore_sim::{ResourceKind, VirtualClock};
use vstore_storage::{SegmentKey, SegmentStore};
use vstore_types::{
    ByteSize, Configuration, CoreSeconds, FormatId, Result, StorageFormat, VStoreError,
    VideoSeconds,
};

/// The report of one ingestion run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Video content ingested.
    pub video: VideoSeconds,
    /// Segments written (across all storage formats).
    pub segments_written: usize,
    /// Transcoding work spent.
    pub transcode_work: CoreSeconds,
    /// Bytes written per storage format, as predicted by the calibrated cost
    /// model (the figure experiments report).
    pub modeled_bytes: BTreeMap<FormatId, ByteSize>,
    /// Bytes actually written to the segment store.
    pub actual_bytes: ByteSize,
}

impl IngestReport {
    /// Total modelled bytes across all storage formats.
    pub fn total_modeled_bytes(&self) -> ByteSize {
        self.modeled_bytes.values().copied().sum()
    }

    /// Average CPU cores kept busy transcoding, assuming ingestion keeps up
    /// with real time (the paper's "CPU utilisation" of Figure 11(c): 100 %
    /// = one core).
    pub fn transcode_cores(&self) -> f64 {
        self.transcode_work.cores_over(self.video.seconds().max(1e-9))
    }

    /// Storage growth rate in GB per day of continuous ingestion
    /// (Figure 11(b)).
    pub fn gb_per_day(&self) -> f64 {
        let per_second =
            self.total_modeled_bytes().bytes() as f64 / self.video.seconds().max(1e-9);
        per_second * 86_400.0 / 1e9
    }

    fn merge(&mut self, other: &IngestReport) {
        self.video += other.video;
        self.segments_written += other.segments_written;
        self.transcode_work += other.transcode_work;
        for (id, bytes) in &other.modeled_bytes {
            *self.modeled_bytes.entry(*id).or_insert(ByteSize::ZERO) += *bytes;
        }
        self.actual_bytes += other.actual_bytes;
    }
}

/// The ingestion pipeline: transcodes incoming segments into every storage
/// format of the configuration and persists them.
pub struct IngestionPipeline {
    store: Arc<SegmentStore>,
    transcoder: Transcoder,
    clock: VirtualClock,
}

impl IngestionPipeline {
    /// A pipeline writing into the given store.
    pub fn new(store: Arc<SegmentStore>, transcoder: Transcoder, clock: VirtualClock) -> Self {
        IngestionPipeline { store, transcoder, clock }
    }

    /// The segment store being written to.
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// The virtual clock charged by this pipeline.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The storage formats of a configuration, keyed by id.
    fn formats_of(config: &Configuration) -> Vec<(FormatId, StorageFormat)> {
        config.storage_formats.iter().map(|(id, sf)| (*id, *sf)).collect()
    }

    /// Ingest one 8-second segment of a stream into every storage format of
    /// the configuration.
    pub fn ingest_segment(
        &self,
        source: &VideoSource,
        segment_index: u64,
        config: &Configuration,
    ) -> Result<IngestReport> {
        let formats = Self::formats_of(config);
        if formats.is_empty() {
            return Err(VStoreError::InvalidState(
                "configuration has no storage formats to ingest into".into(),
            ));
        }
        let scenes = source.segment(segment_index);
        let motion = source.motion_intensity();
        let mut report = IngestReport {
            video: VideoSeconds(scenes.len() as f64 / 30.0),
            ..IngestReport::default()
        };
        for (id, format) in formats {
            let out = self.transcoder.transcode_segment(&scenes, &format, motion)?;
            let bytes = out.data.to_bytes();
            let key = SegmentKey::new(source.name(), id, segment_index);
            self.store.put(&key, &bytes)?;
            self.clock
                .charge_background_seconds(ResourceKind::TranscodeCpu, out.encode_core_seconds);
            self.clock.charge_bytes(ResourceKind::DiskWrite, ByteSize(bytes.len() as u64));
            self.clock.charge_bytes(ResourceKind::DiskSpace, out.modeled_bytes);
            report.segments_written += 1;
            report.transcode_work += CoreSeconds(out.encode_core_seconds);
            *report.modeled_bytes.entry(id).or_insert(ByteSize::ZERO) += out.modeled_bytes;
            report.actual_bytes += ByteSize(bytes.len() as u64);
        }
        Ok(report)
    }

    /// Ingest a contiguous range of segments.
    pub fn ingest_segments(
        &self,
        source: &VideoSource,
        first_segment: u64,
        count: u64,
        config: &Configuration,
    ) -> Result<IngestReport> {
        let mut total = IngestReport::default();
        for seg in first_segment..first_segment + count {
            let report = self.ingest_segment(source, seg, config)?;
            total.merge(&report);
        }
        Ok(total)
    }

    /// Apply one age step of the erosion plan to a stream: delete the planned
    /// fraction of segments (oldest first) from each non-golden storage
    /// format.
    pub fn apply_erosion(
        &self,
        stream: &str,
        config: &Configuration,
        age_days: u32,
    ) -> Result<usize> {
        let step = match config.erosion.step(age_days) {
            Some(step) => step.clone(),
            None => return Ok(0),
        };
        let mut deleted = 0usize;
        for (id, fraction) in &step.deleted {
            if id.is_golden() {
                continue;
            }
            let keys = self.store.segments_of(stream, *id);
            let to_delete = (keys.len() as f64 * fraction.value()).floor() as usize;
            for key in keys.iter().take(to_delete) {
                self.store.delete(key)?;
                deleted += 1;
            }
        }
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use vstore_datasets::Dataset;
    use vstore_types::{
        CodingOption, Consumer, ConsumptionFormat, ErosionPlan, ErosionStep, Fidelity, Fraction,
        OperatorKind, Speed, Subscription,
    };

    fn two_format_config() -> Configuration {
        let golden = StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST);
        let raw = StorageFormat::new(
            Fidelity::new(
                vstore_types::ImageQuality::Best,
                vstore_types::CropFactor::C100,
                vstore_types::Resolution::R200,
                vstore_types::FrameSampling::Full,
            ),
            CodingOption::Raw,
        );
        let mut storage_formats = Map::new();
        storage_formats.insert(FormatId::GOLDEN, golden);
        storage_formats.insert(FormatId(1), raw);
        let mut retrieval_speeds = Map::new();
        retrieval_speeds.insert(FormatId::GOLDEN, Speed(23.0));
        retrieval_speeds.insert(FormatId(1), Speed(1100.0));
        Configuration {
            storage_formats,
            retrieval_speeds,
            subscriptions: vec![Subscription {
                consumer: Consumer::new(OperatorKind::FullNN, 0.9),
                consumption: ConsumptionFormat::new(Fidelity::INGESTION),
                consumption_speed: Speed(4.0),
                expected_accuracy: 1.0,
                storage: FormatId::GOLDEN,
                retrieval_speed: Speed(23.0),
            }],
            erosion: ErosionPlan::no_erosion(10, 0.1),
        }
    }

    fn pipeline(tag: &str) -> IngestionPipeline {
        IngestionPipeline::new(
            Arc::new(SegmentStore::open_temp(tag).unwrap()),
            Transcoder::default(),
            VirtualClock::new(),
        )
    }

    #[test]
    fn ingest_writes_one_segment_per_format() {
        let p = pipeline("ingest-basic");
        let source = VideoSource::new(Dataset::Jackson);
        let config = two_format_config();
        let report = p.ingest_segment(&source, 0, &config).unwrap();
        assert_eq!(report.segments_written, 2);
        assert!((report.video.seconds() - 8.0).abs() < 1e-9);
        assert!(report.transcode_cores() > 0.5, "cores {}", report.transcode_cores());
        assert!(report.gb_per_day() > 1.0);
        assert_eq!(p.store().len(), 2);
        assert!(p.store().contains(&SegmentKey::new("jackson", FormatId::GOLDEN, 0)));
        assert!(p.store().contains(&SegmentKey::new("jackson", FormatId(1), 0)));
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    #[test]
    fn ingest_multiple_segments_accumulates() {
        let p = pipeline("ingest-multi");
        let source = VideoSource::new(Dataset::Park);
        let config = two_format_config();
        let report = p.ingest_segments(&source, 0, 3, &config).unwrap();
        assert_eq!(report.segments_written, 6);
        assert!((report.video.seconds() - 24.0).abs() < 1e-9);
        assert_eq!(p.store().segments_of("park", FormatId::GOLDEN).len(), 3);
        let usage = p.clock().usage();
        assert!(usage.transcode_work().0 > 0.0);
        assert!(usage.bytes(ResourceKind::DiskWrite).bytes() > 0);
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    #[test]
    fn stored_bytes_round_trip_through_the_store() {
        let p = pipeline("ingest-roundtrip");
        let source = VideoSource::new(Dataset::Dashcam);
        let config = two_format_config();
        p.ingest_segment(&source, 2, &config).unwrap();
        let key = SegmentKey::new("dashcam", FormatId(1), 2);
        let bytes = p.store().get(&key).unwrap().unwrap();
        let segment = vstore_codec::SegmentData::from_bytes(&bytes).unwrap();
        assert_eq!(segment.frame_count(), 240);
        assert!(segment.storage_format().coding.is_raw());
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    #[test]
    fn erosion_deletes_planned_fraction_but_never_golden() {
        let p = pipeline("ingest-erosion");
        let source = VideoSource::new(Dataset::Airport);
        let mut config = two_format_config();
        p.ingest_segments(&source, 0, 4, &config).unwrap();
        // Plan: at age 3 days, half of SF1 is gone.
        let mut deleted = Map::new();
        deleted.insert(FormatId(1), Fraction::new(0.5));
        config.erosion.steps[2] =
            ErosionStep { age_days: 3, deleted, overall_relative_speed: 0.8 };
        let removed = p.apply_erosion("airport", &config, 3).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(p.store().segments_of("airport", FormatId(1)).len(), 2);
        assert_eq!(p.store().segments_of("airport", FormatId::GOLDEN).len(), 4);
        // Ages without planned deletion are a no-op.
        assert_eq!(p.apply_erosion("airport", &config, 1).unwrap(), 0);
        std::fs::remove_dir_all(p.store().dir()).ok();
    }

    #[test]
    fn empty_configuration_is_rejected() {
        let p = pipeline("ingest-empty");
        let source = VideoSource::new(Dataset::Tucson);
        let config = Configuration {
            storage_formats: Map::new(),
            retrieval_speeds: Map::new(),
            subscriptions: vec![],
            erosion: ErosionPlan::no_erosion(1, 0.1),
        };
        assert!(p.ingest_segment(&source, 0, &config).is_err());
        std::fs::remove_dir_all(p.store().dir()).ok();
    }
}
