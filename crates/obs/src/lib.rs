//! Observability for vstore: per-request tracing and the unified metrics
//! registry.
//!
//! Two pillars, both designed to cost nothing when unused:
//!
//! - **Request tracing** ([`trace`]): a [`Tracer`] hands out
//!   [`TraceContext`]s at the request boundary (socket frame decode, or
//!   the facade builders for in-process calls). The context is cloned
//!   along the request's path — serve queue, worker, query/ingest
//!   engines, storage read tiers — and every layer opens RAII
//!   [`SpanGuard`]s against it. When the last clone drops, the finished
//!   trace commits into a sharded bounded ring if it was head-sampled
//!   ([`TraceOptions::sample_per_1k`]) *or* slower than
//!   [`TraceOptions::slow_threshold_us`] (slow requests are always
//!   captured). [`Tracer::dump`] exports the rings as a [`TraceDump`] —
//!   renderable as Chrome trace-event JSON
//!   ([`TraceDump::to_chrome_json`]) or a human span-tree report
//!   ([`TraceDump::report`]). Tracing defaults **off**: a disabled
//!   tracer's `begin` is one relaxed atomic load, and span sites on the
//!   resulting inert context are a `None` check.
//!
//! - **Metrics** ([`metrics`]): every stats source implements
//!   [`Collector`] and registers into one [`MetricsRegistry`];
//!   [`MetricsRegistry::snapshot`] materializes typed
//!   counter/gauge/histogram families as a [`MetricsSnapshot`],
//!   renderable as Prometheus-style text exposition
//!   ([`MetricsSnapshot::to_prometheus`]) or JSON
//!   ([`MetricsSnapshot::to_json`]).
//!
//! The [`json`] module is the shared hand-rolled JSON writer (and a
//! minimal validator for tests) both surfaces — and the facade's
//! `StatsReport::to_json` — render through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{
    Collector, HistogramSnapshot, Metric, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{
    current, install, SpanGuard, TraceContext, TraceDump, TraceOptions, TraceRecord, TraceSpan,
    TraceStats, Tracer,
};
