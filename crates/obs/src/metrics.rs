//! The unified metrics registry: typed counter/gauge/histogram families
//! collected from every stats source and rendered as Prometheus-style
//! text exposition or JSON.
//!
//! Stats sources stay what they are — plain snapshot structs like
//! `StoreStats` or `ServeStats` — and register a [`Collector`] that maps
//! the current snapshot into [`Metric`] rows on demand.
//! [`MetricsRegistry::snapshot`] walks the collectors, sorts the rows
//! into a stable order, and returns a [`MetricsSnapshot`] that can travel
//! over the serve wire.

use crate::json;
use std::sync::Mutex;
use vstore_sim::sync::lock_unpoisoned;
use vstore_types::LatencyHistogram;

/// The value of one metric row.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(f64),
    /// A latency/size distribution.
    Histogram(HistogramSnapshot),
}

/// A histogram's buckets at snapshot time. Buckets are *non-cumulative*
/// here ([`count in (previous bound, bound]`]); the Prometheus renderer
/// accumulates them into the exposition format's cumulative `le` series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bound of each bucket (µs for latency histograms), ascending.
    pub bounds: Vec<u64>,
    /// Samples that fell in each bucket (same length as `bounds`).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Snapshot a [`LatencyHistogram`]: one bucket per populated
    /// power-of-two bin, bounds in µs.
    #[must_use]
    pub fn from_latency(hist: &LatencyHistogram) -> HistogramSnapshot {
        let (buckets, count, total_us, max_us) = hist.to_parts();
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        let top = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        for (i, &bucket_count) in buckets.iter().enumerate().take(top) {
            bounds.push(if i == 0 { 0 } else { 1u64 << i });
            counts.push(bucket_count);
        }
        HistogramSnapshot {
            bounds,
            counts,
            count,
            sum: total_us,
            max: max_us,
        }
    }
}

/// One metric row: a name, optional labels, and a typed value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Prometheus-style snake_case name, e.g. `vstore_store_puts_total`.
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// Label pairs, e.g. `("shard", "3")`.
    pub labels: Vec<(String, String)>,
    /// The typed value.
    pub value: MetricValue,
}

impl Metric {
    /// A counter row.
    #[must_use]
    pub fn counter(name: &str, help: &str, value: u64) -> Metric {
        Metric {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: Vec::new(),
            value: MetricValue::Counter(value),
        }
    }

    /// A gauge row.
    #[must_use]
    pub fn gauge(name: &str, help: &str, value: f64) -> Metric {
        Metric {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: Vec::new(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A histogram row from a [`LatencyHistogram`].
    #[must_use]
    pub fn latency(name: &str, help: &str, hist: &LatencyHistogram) -> Metric {
        Metric {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: Vec::new(),
            value: MetricValue::Histogram(HistogramSnapshot::from_latency(hist)),
        }
    }

    /// Attach a label pair.
    #[must_use]
    pub fn with_label(mut self, key: &str, value: impl std::fmt::Display) -> Metric {
        self.labels.push((key.to_owned(), value.to_string()));
        self
    }

    /// The exposition type keyword of this row's value.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Render `{label="value",…}` (empty string when unlabelled), with an
    /// extra pair appended (used for histogram `le` buckets).
    fn label_block(&self, extra: Option<(&str, &str)>) -> String {
        if self.labels.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for (key, value) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            for c in value.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// The registry's materialized output: every collector's rows in stable
/// `(name, labels)` order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The metric rows.
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// Render as Prometheus text exposition (version 0.0.4): `# HELP` /
    /// `# TYPE` headers once per family, histogram families expanded
    /// into cumulative `_bucket{le=…}` series plus `_sum` and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for metric in &self.metrics {
            if metric.name != last_family {
                out.push_str(&format!("# HELP {} {}\n", metric.name, metric.help));
                out.push_str(&format!("# TYPE {} {}\n", metric.name, metric.type_name()));
                last_family = &metric.name;
            }
            match &metric.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        metric.name,
                        metric.label_block(None)
                    ));
                }
                MetricValue::Gauge(v) => {
                    let rendered = if v.is_finite() { *v } else { 0.0 };
                    out.push_str(&format!(
                        "{}{} {rendered}\n",
                        metric.name,
                        metric.label_block(None)
                    ));
                }
                MetricValue::Histogram(hist) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                        cumulative = cumulative.saturating_add(*count);
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            metric.name,
                            metric.label_block(Some(("le", &bound.to_string())))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        metric.name,
                        metric.label_block(Some(("le", "+Inf"))),
                        hist.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        metric.name,
                        metric.label_block(None),
                        hist.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        metric.name,
                        metric.label_block(None),
                        hist.count
                    ));
                }
            }
        }
        out
    }

    /// Render as a JSON array of rows, stable field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, metric) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            out.push('{');
            json::push_key(&mut out, "name");
            json::push_string(&mut out, &metric.name);
            out.push_str(", ");
            json::push_key(&mut out, "type");
            json::push_string(&mut out, metric.type_name());
            if !metric.labels.is_empty() {
                out.push_str(", ");
                json::push_key(&mut out, "labels");
                out.push('{');
                for (j, (key, value)) in metric.labels.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    json::push_key(&mut out, key);
                    json::push_string(&mut out, value);
                }
                out.push('}');
            }
            out.push_str(", ");
            match &metric.value {
                MetricValue::Counter(v) => {
                    json::push_key(&mut out, "value");
                    out.push_str(&v.to_string());
                }
                MetricValue::Gauge(v) => {
                    json::push_key(&mut out, "value");
                    json::push_f64(&mut out, *v);
                }
                MetricValue::Histogram(hist) => {
                    json::push_key(&mut out, "buckets");
                    out.push('[');
                    for (j, (bound, count)) in hist.bounds.iter().zip(&hist.counts).enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{bound}, {count}]"));
                    }
                    out.push_str("], ");
                    json::push_key(&mut out, "count");
                    out.push_str(&hist.count.to_string());
                    out.push_str(", ");
                    json::push_key(&mut out, "sum");
                    out.push_str(&hist.sum.to_string());
                    out.push_str(", ");
                    json::push_key(&mut out, "max");
                    out.push_str(&hist.max.to_string());
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// The first row with this name, if any (test/diagnostic helper).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// A source of metric rows. Implementations snapshot their stats source
/// on every call — collectors hold handles, not copies.
pub trait Collector: Send + Sync {
    /// Append this source's current rows to `out`.
    fn collect(&self, out: &mut Vec<Metric>);
}

/// Closures are collectors.
impl<F> Collector for F
where
    F: Fn(&mut Vec<Metric>) + Send + Sync,
{
    fn collect(&self, out: &mut Vec<Metric>) {
        self(out);
    }
}

/// The one registry every stats source registers into.
#[derive(Default)]
pub struct MetricsRegistry {
    collectors: Mutex<Vec<Box<dyn Collector>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("collectors", &lock_unpoisoned(&self.collectors).len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register one collector; it is polled on every snapshot from then
    /// on.
    pub fn register(&self, collector: Box<dyn Collector>) {
        lock_unpoisoned(&self.collectors).push(collector);
    }

    /// Registered collector count.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.collectors).len()
    }

    /// Whether no collector has registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Poll every collector and return the rows in stable
    /// `(name, labels)` order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = Vec::new();
        for collector in lock_unpoisoned(&self.collectors).iter() {
            collector.collect(&mut metrics);
        }
        metrics.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        MetricsSnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_polls_collectors_and_sorts_rows() {
        let registry = MetricsRegistry::new();
        registry.register(Box::new(|out: &mut Vec<Metric>| {
            out.push(Metric::gauge("z_gauge", "a gauge", 1.5));
            out.push(Metric::counter("a_counter", "a counter", 7).with_label("shard", 1));
        }));
        registry.register(Box::new(|out: &mut Vec<Metric>| {
            out.push(Metric::counter("a_counter", "a counter", 3).with_label("shard", 0));
        }));
        assert_eq!(registry.len(), 2);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a_counter", "a_counter", "z_gauge"]);
        assert_eq!(snapshot.metrics[0].labels, [("shard".into(), "0".into())]);
    }

    #[test]
    fn latency_histograms_snapshot_non_cumulative_buckets() {
        let mut hist = LatencyHistogram::default();
        hist.record(0);
        hist.record(3);
        hist.record(3);
        hist.record(900);
        let snap = HistogramSnapshot::from_latency(&hist);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max, 900);
        assert_eq!(snap.counts.iter().sum::<u64>(), 4);
        assert_eq!(snap.bounds[0], 0);
        assert!(snap.bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prometheus_exposition_accumulates_histogram_buckets() {
        let mut hist = LatencyHistogram::default();
        hist.record(1);
        hist.record(2);
        hist.record(700);
        let snapshot = MetricsSnapshot {
            metrics: vec![
                Metric::counter("vstore_reqs_total", "requests", 3),
                Metric::latency("vstore_wait_us", "queue wait", &hist),
            ],
        };
        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE vstore_reqs_total counter"), "{text}");
        assert!(text.contains("vstore_reqs_total 3"), "{text}");
        assert!(text.contains("# TYPE vstore_wait_us histogram"), "{text}");
        assert!(
            text.contains("vstore_wait_us_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("vstore_wait_us_count 3"), "{text}");
        assert!(text.contains("vstore_wait_us_sum 703"), "{text}");
        // Cumulative: every bucket line's value is <= the +Inf count.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let value: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("bucket value");
            assert!(value >= last, "{line}");
            last = value;
        }
    }

    #[test]
    fn json_rendering_is_valid_and_typed() {
        let mut hist = LatencyHistogram::default();
        hist.record(5);
        let snapshot = MetricsSnapshot {
            metrics: vec![
                Metric::counter("c", "counter \"quoted\"", 1).with_label("shard", 2),
                Metric::gauge("g", "gauge", f64::NAN),
                Metric::latency("h", "hist", &hist),
            ],
        };
        let json = snapshot.to_json();
        assert_eq!(crate::json::validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"type\": \"counter\""));
        assert!(json.contains("\"type\": \"gauge\""));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"labels\": {\"shard\": \"2\"}"));
    }
}
