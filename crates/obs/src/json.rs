//! The shared hand-rolled JSON writer.
//!
//! Every machine-readable surface in the workspace — the metrics
//! snapshot, the Chrome trace export, the facade's `StatsReport::to_json`
//! — renders through these helpers so escaping and number formatting stay
//! identical everywhere. [`validate`] is a minimal recursive-descent
//! parser used by tests to prove an emitted document is well-formed
//! without pulling in a JSON dependency.

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` in a stable, always-valid-JSON form: finite values use
/// Rust's shortest round-trip formatting; NaN and infinities (which JSON
/// cannot carry) render as `0`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // Rust renders whole floats as e.g. `3` — keep them typed as
        // numbers but unambiguous for golden tests by leaving them as-is
        // (a bare integer is valid JSON).
    } else {
        out.push('0');
    }
}

/// Append a `"key": ` prefix (no value).
pub fn push_key(out: &mut String, key: &str) {
    push_string(out, key);
    out.push_str(": ");
}

/// Validate that `s` is one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset of the failure on
/// error. Numbers are checked loosely (anything `f64` can parse).
pub fn validate(s: &str) -> Result<(), usize> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(_) => number(bytes, pos),
        None => Err(*pos),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(start);
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(|_| ())
        .ok_or(start)
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if bytes.len() < *pos + 5
                            || !bytes[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(*pos);
                        }
                        *pos += 5;
                    }
                    _ => return Err(*pos),
                }
            }
            _ => *pos += 1,
        }
    }
    Err(*pos)
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(*pos);
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(*pos);
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        let mut out = String::new();
        push_key(&mut out, "k\"ey\n");
        let mut doc = String::from("{");
        doc.push_str(&out);
        push_string(&mut doc, "va\\lue\twith \u{1} control");
        doc.push('}');
        assert_eq!(validate(&doc), Ok(()), "{doc}");
    }

    #[test]
    fn floats_render_as_valid_json() {
        for v in [0.0, -1.5, 1e300, f64::NAN, f64::INFINITY, 3.0] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(validate(&out), Ok(()), "{v} -> {out}");
        }
    }

    #[test]
    fn validator_accepts_documents_and_rejects_garbage() {
        assert_eq!(
            validate(r#"{"a": [1, 2.5, "x", true, null], "b": {}}"#),
            Ok(())
        );
        assert_eq!(validate("[]"), Ok(()));
        assert!(validate(r#"{"a": }"#).is_err());
        assert!(validate(r#"{"a": 1,}"#).is_err());
        assert!(validate(r#""unterminated"#).is_err());
        assert!(validate("1 2").is_err());
    }
}
