//! Per-request tracing: contexts, RAII span guards, sharded trace rings.
//!
//! # Life of a trace
//!
//! 1. The request boundary calls [`Tracer::begin`]. A disabled tracer
//!    answers with an inert [`TraceContext`] after **one relaxed atomic
//!    load** — the entire cost of the subsystem when tracing is off.
//!    An enabled tracer allocates a trace id and takes the head-sampling
//!    decision ([`TraceOptions::sample_per_1k`]).
//! 2. The context is cloned along with the request (into the serve
//!    queue's job, across worker threads, into prefetch closures — clones
//!    are explicit, so they survive thread hops that thread-locals do
//!    not). Each layer opens [`TraceContext::span`] guards; dropping the
//!    guard records the timed span. [`install`]/[`current`] carry the
//!    context across call boundaries *within* a thread.
//! 3. When the last clone drops, the trace is finished: if it was
//!    sampled, or its end-to-end duration reached
//!    [`TraceOptions::slow_threshold_us`] (slow requests are always
//!    captured), the finished spans commit into one of the tracer's
//!    sharded bounded rings, evicting oldest traces beyond
//!    [`TraceOptions::ring_spans`] spans per shard.
//! 4. [`Tracer::dump`] snapshots the rings into a [`TraceDump`] —
//!    exportable as Chrome trace-event JSON or a human span-tree report.
//!
//! All timestamps come from monotonic [`Instant`]s, exported as
//! microseconds relative to the tracer's construction epoch.

use crate::json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vstore_sim::sync::lock_unpoisoned;
use vstore_types::{Result, VStoreError};

/// Ring shards; trace ids spread across them so committing threads
/// rarely contend on the same lock.
const RING_SHARDS: usize = 8;

/// Tracing knobs, validated at store open like the other option structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Master switch. Off by default; when off the tracer never allocates
    /// and every span site is a no-op behind one relaxed atomic load.
    pub enabled: bool,
    /// Head-sampling rate: how many requests per thousand get their trace
    /// committed regardless of latency. 1000 traces everything, 0 traces
    /// only slow requests.
    pub sample_per_1k: u32,
    /// Bound on buffered spans **per ring shard** (there are a fixed
    /// handful of shards); oldest traces are evicted beyond it.
    pub ring_spans: usize,
    /// Requests at least this slow are always captured, sampled or not.
    pub slow_threshold_us: u64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            enabled: false,
            sample_per_1k: 10,
            ring_spans: 4096,
            slow_threshold_us: 50_000,
        }
    }
}

impl TraceOptions {
    /// Enable tracing with the default sampling knobs.
    #[must_use]
    pub fn enabled() -> Self {
        TraceOptions {
            enabled: true,
            ..TraceOptions::default()
        }
    }

    /// Set the head-sampling rate (per 1000 requests; 1000 = all).
    #[must_use]
    pub fn with_sample_per_1k(mut self, sample_per_1k: u32) -> Self {
        self.sample_per_1k = sample_per_1k;
        self
    }

    /// Set the per-shard buffered-span bound.
    #[must_use]
    pub fn with_ring_spans(mut self, ring_spans: usize) -> Self {
        self.ring_spans = ring_spans;
        self
    }

    /// Set the always-capture latency threshold in microseconds.
    #[must_use]
    pub fn with_slow_threshold_us(mut self, slow_threshold_us: u64) -> Self {
        self.slow_threshold_us = slow_threshold_us;
        self
    }

    /// Reject option combinations that cannot work.
    pub fn validate(&self) -> Result<()> {
        if self.sample_per_1k > 1000 {
            return Err(VStoreError::invalid_argument(
                "TraceOptions::sample_per_1k is a per-mille rate; at most 1000",
            ));
        }
        if self.enabled && self.ring_spans == 0 {
            return Err(VStoreError::invalid_argument(
                "TraceOptions::ring_spans must be at least 1 when tracing is enabled",
            ));
        }
        Ok(())
    }
}

/// One finished, timed span as recorded in a trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span site name, e.g. `net.decode` or `read.disk`.
    pub name: String,
    /// Free-form detail (stream name, operator, …); empty when none.
    pub detail: String,
    /// Start offset in µs **relative to the trace's start**.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
}

impl TraceSpan {
    /// End offset in µs relative to the trace's start.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// One committed trace: the request's spans plus its head/tail metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Unique (per tracer) trace id.
    pub trace_id: u64,
    /// Root operation name (the request kind at the boundary).
    pub root: String,
    /// Trace start in µs since the tracer's epoch.
    pub start_us: u64,
    /// End-to-end duration in µs (creation to last context drop).
    pub dur_us: u64,
    /// Whether head-sampling elected this trace.
    pub sampled: bool,
    /// Whether the trace crossed the slow threshold (always captured).
    pub slow: bool,
    /// The recorded spans, in completion order.
    pub spans: Vec<TraceSpan>,
}

impl TraceRecord {
    /// The spans as a containment tree: `(depth, span)` rows in start
    /// order, where a span nests under the nearest earlier span whose
    /// `[start, end]` window contains it. Depth 0 rows are top-level.
    pub fn span_tree(&self) -> Vec<(usize, &TraceSpan)> {
        let mut ordered: Vec<&TraceSpan> = self.spans.iter().collect();
        // Start ascending; wider first on ties so parents precede children.
        ordered.sort_by(|a, b| a.start_us.cmp(&b.start_us).then(b.dur_us.cmp(&a.dur_us)));
        let mut rows = Vec::with_capacity(ordered.len());
        let mut stack: Vec<&TraceSpan> = Vec::new();
        for span in ordered {
            while let Some(top) = stack.last() {
                if span.start_us >= top.start_us && span.end_us() <= top.end_us() {
                    break;
                }
                stack.pop();
            }
            rows.push((stack.len(), span));
            stack.push(span);
        }
        rows
    }
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tags = match (self.sampled, self.slow) {
            (_, true) => " [slow]",
            (true, false) => "",
            (false, false) => " [unsampled]",
        };
        writeln!(
            f,
            "trace {:#018x} {} — {} µs{tags}",
            self.trace_id, self.root, self.dur_us
        )?;
        for (depth, span) in self.span_tree() {
            write!(
                f,
                "  {:indent$}{} {} µs (at +{} µs)",
                "",
                span.name,
                span.dur_us,
                span.start_us,
                indent = depth * 2
            )?;
            if span.detail.is_empty() {
                writeln!(f)?;
            } else {
                writeln!(f, " — {}", span.detail)?;
            }
        }
        Ok(())
    }
}

/// A snapshot of a tracer's rings, exportable over the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// Committed traces, oldest first.
    pub records: Vec<TraceRecord>,
    /// Spans evicted from the rings since the tracer started (capacity
    /// pressure, not sampling).
    pub dropped_spans: u64,
}

impl TraceDump {
    /// The slowest committed trace, if any.
    #[must_use]
    pub fn slowest(&self) -> Option<&TraceRecord> {
        self.records.iter().max_by_key(|r| r.dur_us)
    }

    /// Render as Chrome trace-event JSON (the `chrome://tracing` /
    /// Perfetto "JSON Array Format"): one complete (`ph:"X"`) event per
    /// span plus one per trace for the root, timestamps in µs since the
    /// tracer epoch.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let push_event = |out: &mut String,
                          first: &mut bool,
                          name: &str,
                          ts: u64,
                          dur: u64,
                          tid: u64,
                          trace_id: u64,
                          detail: &str| {
            if !*first {
                out.push_str(",\n ");
            }
            *first = false;
            out.push('{');
            json::push_key(out, "name");
            json::push_string(out, name);
            out.push_str(", ");
            json::push_key(out, "cat");
            json::push_string(out, "vstore");
            out.push_str(", \"ph\": \"X\", ");
            json::push_key(out, "ts");
            out.push_str(&ts.to_string());
            out.push_str(", ");
            json::push_key(out, "dur");
            out.push_str(&dur.to_string());
            out.push_str(", \"pid\": 1, ");
            json::push_key(out, "tid");
            out.push_str(&tid.to_string());
            out.push_str(", ");
            json::push_key(out, "args");
            out.push('{');
            json::push_key(out, "trace_id");
            out.push_str(&trace_id.to_string());
            if !detail.is_empty() {
                out.push_str(", ");
                json::push_key(out, "detail");
                json::push_string(out, detail);
            }
            out.push_str("}}");
        };
        for record in &self.records {
            push_event(
                &mut out,
                &mut first,
                &record.root,
                record.start_us,
                record.dur_us,
                0,
                record.trace_id,
                if record.slow { "slow" } else { "" },
            );
            for span in &record.spans {
                push_event(
                    &mut out,
                    &mut first,
                    &span.name,
                    record.start_us.saturating_add(span.start_us),
                    span.dur_us,
                    span.tid,
                    record.trace_id,
                    &span.detail,
                );
            }
        }
        out.push(']');
        out
    }

    /// Render the human report: every trace's span tree, slowest last.
    #[must_use]
    pub fn report(&self) -> String {
        let mut ordered: Vec<&TraceRecord> = self.records.iter().collect();
        ordered.sort_by_key(|r| r.dur_us);
        let mut out = format!(
            "trace dump: {} traces, {} spans dropped\n",
            self.records.len(),
            self.dropped_spans
        );
        for record in ordered {
            out.push_str(&record.to_string());
        }
        out
    }
}

/// Counters describing a tracer's work so far (all relaxed reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces begun (requests seen while enabled).
    pub begun: u64,
    /// Traces elected by head-sampling.
    pub sampled: u64,
    /// Traces committed to the rings (sampled or slow).
    pub committed: u64,
    /// Of the committed traces, how many crossed the slow threshold.
    pub slow: u64,
    /// Spans evicted from the rings by capacity pressure.
    pub dropped_spans: u64,
}

/// One ring shard: committed traces plus their total span count.
#[derive(Default)]
struct RingShard {
    traces: VecDeque<TraceRecord>,
    spans: usize,
}

/// The tracer: hands out [`TraceContext`]s and owns the trace rings.
///
/// One per store (not global), shared as an `Arc` by every layer that
/// begins traces. Constructed disabled by [`Tracer::off`] or from
/// [`TraceOptions`] by [`Tracer::new`].
pub struct Tracer {
    enabled: AtomicBool,
    options: TraceOptions,
    epoch: Instant,
    next_id: AtomicU64,
    sample_counter: AtomicU64,
    begun: AtomicU64,
    sampled: AtomicU64,
    committed: AtomicU64,
    slow: AtomicU64,
    dropped_spans: AtomicU64,
    shards: Vec<Mutex<RingShard>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("options", &self.options)
            .finish()
    }
}

impl Tracer {
    /// A tracer configured by `options` (which may be disabled).
    #[must_use]
    pub fn new(options: TraceOptions) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: AtomicBool::new(options.enabled),
            options,
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            sample_counter: AtomicU64::new(0),
            begun: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            dropped_spans: AtomicU64::new(0),
            shards: (0..RING_SHARDS).map(|_| Mutex::default()).collect(),
        })
    }

    /// The no-op tracer: never samples, never allocates.
    #[must_use]
    pub fn off() -> Arc<Tracer> {
        Tracer::new(TraceOptions::default())
    }

    /// Whether tracing is on — one relaxed atomic load, the entire
    /// fast-path cost of a span site at the request boundary.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The options this tracer was built with.
    #[must_use]
    pub fn options(&self) -> TraceOptions {
        self.options
    }

    /// Begin a trace rooted at `root` (the request kind). Returns an
    /// inert context when tracing is disabled.
    #[must_use]
    pub fn begin(self: &Arc<Self>, root: &'static str) -> TraceContext {
        if !self.enabled() {
            return TraceContext::disabled();
        }
        self.begun.fetch_add(1, Ordering::Relaxed);
        let n = self.sample_counter.fetch_add(1, Ordering::Relaxed);
        let sampled = n % 1000 < u64::from(self.options.sample_per_1k);
        if sampled {
            self.sampled.fetch_add(1, Ordering::Relaxed);
        }
        let now = Instant::now();
        TraceContext {
            inner: Some(Arc::new(ActiveTrace {
                tracer: Arc::clone(self),
                trace_id: self.next_id.fetch_add(1, Ordering::Relaxed) + 1,
                root: Mutex::new(root),
                sampled,
                started: now,
                start_us: instant_us(self.epoch, now),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Counters describing the tracer's work so far.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            begun: self.begun.load(Ordering::Relaxed),
            sampled: self.sampled.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            slow: self.slow.load(Ordering::Relaxed),
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
        }
    }

    /// Snapshot up to `max_traces` of the most recent committed traces
    /// (0 = all), oldest first.
    #[must_use]
    pub fn dump(&self, max_traces: usize) -> TraceDump {
        let mut records = Vec::new();
        for shard in &self.shards {
            records.extend(lock_unpoisoned(shard).traces.iter().cloned());
        }
        records.sort_by_key(|r| (r.start_us, r.trace_id));
        if max_traces > 0 && records.len() > max_traces {
            records.drain(..records.len() - max_traces);
        }
        TraceDump {
            records,
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
        }
    }

    /// Commit one finished trace into its ring shard, evicting oldest
    /// traces past the per-shard span bound.
    fn commit(&self, record: TraceRecord) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        if record.slow {
            self.slow.fetch_add(1, Ordering::Relaxed);
        }
        let cap = self.options.ring_spans.max(1);
        let mut shard =
            lock_unpoisoned(&self.shards[(record.trace_id as usize) % self.shards.len()]);
        shard.spans += record.spans.len().max(1);
        shard.traces.push_back(record);
        while shard.spans > cap && shard.traces.len() > 1 {
            if let Some(evicted) = shard.traces.pop_front() {
                let spans = evicted.spans.len().max(1);
                shard.spans -= spans;
                self.dropped_spans
                    .fetch_add(spans as u64, Ordering::Relaxed);
            }
        }
    }
}

/// µs between two instants, saturating (0 when `later` precedes `epoch`).
fn instant_us(epoch: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(epoch).as_micros()).unwrap_or(u64::MAX)
}

/// The live state behind an active trace's contexts. Dropping the last
/// clone finishes the trace and commits it when sampled or slow.
struct ActiveTrace {
    tracer: Arc<Tracer>,
    trace_id: u64,
    root: Mutex<&'static str>,
    sampled: bool,
    started: Instant,
    start_us: u64,
    spans: Mutex<Vec<TraceSpan>>,
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        let dur_us = instant_us(self.started, Instant::now());
        let slow = dur_us >= self.tracer.options.slow_threshold_us;
        if !self.sampled && !slow {
            return;
        }
        let spans = std::mem::take(&mut *lock_unpoisoned(&self.spans));
        let record = TraceRecord {
            trace_id: self.trace_id,
            root: (*lock_unpoisoned(&self.root)).to_owned(),
            start_us: self.start_us,
            dur_us,
            sampled: self.sampled,
            slow,
            spans,
        };
        let tracer = Arc::clone(&self.tracer);
        tracer.commit(record);
    }
}

/// A cloneable handle to one request's trace. Inert (all methods no-ops)
/// when the request is untraced; clone it explicitly across thread hops.
#[derive(Clone, Default)]
pub struct TraceContext {
    inner: Option<Arc<ActiveTrace>>,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("trace_id", &self.trace_id())
            .finish()
    }
}

impl TraceContext {
    /// The inert context: every span call is a `None` check.
    #[must_use]
    pub fn disabled() -> TraceContext {
        TraceContext { inner: None }
    }

    /// Whether this context records anything.
    #[inline]
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, when active.
    #[must_use]
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|t| t.trace_id)
    }

    /// Rename the trace root once the request kind is known (the socket
    /// path begins the trace before the frame is decoded).
    pub fn set_root(&self, root: &'static str) {
        if let Some(trace) = &self.inner {
            *lock_unpoisoned(&trace.root) = root;
        }
    }

    /// Open a timed span; it records when the guard drops.
    #[must_use = "a span measures until its guard drops; binding it to `_` drops it immediately"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            trace: self.inner.clone(),
            name,
            detail: None,
            begun: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Open a timed span with a detail string; `detail` is only invoked
    /// when the trace is active, so the untraced path never allocates.
    #[must_use = "a span measures until its guard drops; binding it to `_` drops it immediately"]
    pub fn span_with(&self, name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
        SpanGuard {
            detail: self.inner.as_ref().map(|_| detail()),
            trace: self.inner.clone(),
            name,
            begun: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Record an already-elapsed span that started at `start` and ends
    /// now — for intervals whose start predates the calling frame, like
    /// queue wait.
    pub fn record_since(&self, name: &'static str, start: Instant) {
        if let Some(trace) = &self.inner {
            let now = Instant::now();
            push_span(trace, name, String::new(), start, instant_us(start, now));
        }
    }
}

/// Append one finished span to an active trace.
fn push_span(trace: &Arc<ActiveTrace>, name: &str, detail: String, start: Instant, dur_us: u64) {
    let span = TraceSpan {
        name: name.to_owned(),
        detail,
        start_us: instant_us(trace.started, start),
        dur_us,
        tid: current_tid(),
    };
    lock_unpoisoned(&trace.spans).push(span);
}

/// RAII span: times from creation to drop and records into the trace.
#[must_use = "a span measures until its guard drops; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    trace: Option<Arc<ActiveTrace>>,
    name: &'static str,
    detail: Option<String>,
    begun: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(trace), Some(begun)) = (self.trace.take(), self.begun) {
            let dur_us = instant_us(begun, Instant::now());
            push_span(
                &trace,
                self.name,
                self.detail.take().unwrap_or_default(),
                begun,
                dur_us,
            );
        }
    }
}

/// Small dense per-thread id for trace spans (first use numbers the
/// thread; ids are stable for the thread's lifetime).
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|tid| *tid)
}

thread_local! {
    /// The context installed for the thread's current request, if any.
    static CURRENT: RefCell<TraceContext> = RefCell::new(TraceContext::disabled());
}

/// The context installed on this thread (inert when none): how layers
/// that are *called by* a traced request pick up its trace without
/// signature changes. Clone the result into closures that hop threads.
#[must_use]
pub fn current() -> TraceContext {
    CURRENT.with(|current| current.borrow().clone())
}

/// Install `context` as this thread's current context until the returned
/// guard drops (the previous context is restored — scopes nest).
pub fn install(context: &TraceContext) -> InstallGuard {
    let prev = CURRENT.with(|current| current.replace(context.clone()));
    InstallGuard { prev }
}

/// Restores the previously installed context on drop.
pub struct InstallGuard {
    prev: TraceContext,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = std::mem::take(&mut self.prev);
        CURRENT.with(|current| *current.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn all_on() -> TraceOptions {
        TraceOptions::enabled().with_sample_per_1k(1000)
    }

    #[test]
    fn disabled_tracer_hands_out_inert_contexts() {
        let tracer = Tracer::off();
        let ctx = tracer.begin("query");
        assert!(!ctx.is_active());
        drop(ctx.span("net.decode"));
        drop(ctx);
        assert_eq!(tracer.stats(), TraceStats::default());
        assert!(tracer.dump(0).records.is_empty());
    }

    #[test]
    fn spans_commit_when_the_last_clone_drops() {
        let tracer = Tracer::new(all_on());
        let ctx = tracer.begin("query");
        assert!(ctx.is_active());
        let clone = ctx.clone();
        {
            let _outer = ctx.span("worker.execute");
            std::thread::sleep(Duration::from_millis(2));
            drop(ctx.span_with("read.disk", || "jackson/1".into()));
        }
        drop(ctx);
        assert!(tracer.dump(0).records.is_empty(), "clone still alive");
        drop(clone);
        let dump = tracer.dump(0);
        assert_eq!(dump.records.len(), 1);
        let record = &dump.records[0];
        assert_eq!(record.root, "query");
        assert!(record.sampled);
        assert_eq!(record.spans.len(), 2);
        let names: Vec<&str> = record.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"worker.execute"));
        assert!(names.contains(&"read.disk"));
        let read = record
            .spans
            .iter()
            .find(|s| s.name == "read.disk")
            .expect("read span");
        assert_eq!(read.detail, "jackson/1");
        assert!(record.dur_us >= 2_000, "{}", record.dur_us);
    }

    #[test]
    fn unsampled_slow_traces_are_still_captured() {
        let tracer = Tracer::new(
            TraceOptions::enabled()
                .with_sample_per_1k(0)
                .with_slow_threshold_us(1_000),
        );
        let fast = tracer.begin("fast");
        drop(fast);
        let slow = tracer.begin("slow");
        std::thread::sleep(Duration::from_millis(3));
        drop(slow);
        let dump = tracer.dump(0);
        assert_eq!(dump.records.len(), 1);
        assert_eq!(dump.records[0].root, "slow");
        assert!(dump.records[0].slow);
        assert!(!dump.records[0].sampled);
        assert_eq!(tracer.stats().committed, 1);
        assert_eq!(tracer.stats().begun, 2);
    }

    #[test]
    fn sampling_rate_is_per_mille() {
        let tracer = Tracer::new(TraceOptions::enabled().with_sample_per_1k(100));
        for _ in 0..2000 {
            drop(tracer.begin("request"));
        }
        let stats = tracer.stats();
        assert_eq!(stats.begun, 2000);
        assert_eq!(stats.sampled, 200, "deterministic modulo sampling");
        assert_eq!(stats.committed, 200);
    }

    #[test]
    fn rings_are_bounded_and_count_evictions() {
        let tracer = Tracer::new(all_on().with_ring_spans(4));
        for i in 0..64 {
            let ctx = tracer.begin("request");
            drop(ctx.span(if i % 2 == 0 { "a" } else { "b" }));
            drop(ctx);
        }
        let dump = tracer.dump(0);
        let total_spans: usize = dump.records.iter().map(|r| r.spans.len()).sum();
        assert!(
            total_spans <= 4 * RING_SHARDS,
            "{total_spans} spans survived a {} bound",
            4 * RING_SHARDS
        );
        assert!(dump.dropped_spans > 0);
        assert_eq!(tracer.stats().committed, 64);
    }

    #[test]
    fn dump_caps_at_the_most_recent_traces() {
        let tracer = Tracer::new(all_on());
        for _ in 0..10 {
            drop(tracer.begin("request"));
        }
        let capped = tracer.dump(3);
        assert_eq!(capped.records.len(), 3);
        let all = tracer.dump(0);
        assert_eq!(all.records.len(), 10);
        // The capped dump is the tail of the full one.
        assert_eq!(capped.records, all.records[7..].to_vec());
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let tracer = Tracer::new(all_on());
        let outer = tracer.begin("outer");
        let inner = tracer.begin("inner");
        assert!(!current().is_active());
        {
            let _o = install(&outer);
            assert_eq!(current().trace_id(), outer.trace_id());
            {
                let _i = install(&inner);
                assert_eq!(current().trace_id(), inner.trace_id());
            }
            assert_eq!(current().trace_id(), outer.trace_id());
        }
        assert!(!current().is_active());
    }

    #[test]
    fn span_tree_nests_by_containment() {
        let record = TraceRecord {
            trace_id: 1,
            root: "query".into(),
            start_us: 0,
            dur_us: 100,
            sampled: true,
            slow: false,
            spans: vec![
                TraceSpan {
                    name: "child".into(),
                    detail: String::new(),
                    start_us: 20,
                    dur_us: 30,
                    tid: 1,
                },
                TraceSpan {
                    name: "parent".into(),
                    detail: String::new(),
                    start_us: 10,
                    dur_us: 80,
                    tid: 1,
                },
                TraceSpan {
                    name: "sibling".into(),
                    detail: String::new(),
                    start_us: 95,
                    dur_us: 5,
                    tid: 1,
                },
            ],
        };
        let tree: Vec<(usize, &str)> = record
            .span_tree()
            .into_iter()
            .map(|(d, s)| (d, s.name.as_str()))
            .collect();
        assert_eq!(tree, [(0, "parent"), (1, "child"), (0, "sibling")]);
        let rendered = record.to_string();
        assert!(rendered.contains("  parent"), "{rendered}");
        assert!(rendered.contains("    child"), "{rendered}");
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let tracer = Tracer::new(all_on());
        let ctx = tracer.begin("query");
        drop(ctx.span_with("read.disk", || "detail \"quoted\"".into()));
        drop(ctx);
        let json = tracer.dump(0).to_chrome_json();
        assert_eq!(crate::json::validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("read.disk"));
    }

    #[test]
    fn options_validate() {
        assert!(TraceOptions::default().validate().is_ok());
        assert!(all_on().validate().is_ok());
        assert!(TraceOptions::default()
            .with_sample_per_1k(1001)
            .validate()
            .is_err());
        assert!(TraceOptions::enabled()
            .with_ring_spans(0)
            .validate()
            .is_err());
    }
}
