//! Concurrency stress test of the sharded segment store: many threads doing
//! mixed put/get/delete traffic while compaction runs concurrently, then
//! full consistency checks against per-thread models.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vstore_sim::DeterministicHasher;
use vstore_storage::{SegmentKey, SegmentStore, StoreStats};
use vstore_types::FormatId;

const WRITER_THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 400;
const KEYS_PER_THREAD: u64 = 48;

fn key(thread: u64, index: u64) -> SegmentKey {
    SegmentKey::new(format!("stress-{thread}"), FormatId(1), index)
}

fn value(thread: u64, index: u64, version: u64) -> Vec<u8> {
    let len = 200 + ((thread * 7 + index * 13 + version * 29) % 800) as usize;
    let byte = (thread * 31 + index + version) as u8;
    vec![byte; len]
}

#[test]
fn mixed_ops_under_concurrent_compaction_stay_consistent() {
    let store = Arc::new(SegmentStore::open_temp_with_shards("stress", 8).unwrap());
    assert_eq!(store.shard_count(), 8);

    // A compactor hammering the whole store while writers run.
    let stop = Arc::new(AtomicBool::new(false));
    let compactor = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                store.compact().unwrap();
                rounds += 1;
                std::thread::yield_now();
            }
            rounds
        })
    };

    // Each writer owns its own stream, so it can keep an exact model of what
    // the store must contain.
    let mut handles = Vec::new();
    for thread in 0..WRITER_THREADS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            // model[i] = Some(version) when key i must be live.
            let mut model: Vec<Option<u64>> = vec![None; KEYS_PER_THREAD as usize];
            for op in 0..OPS_PER_THREAD {
                let draw = DeterministicHasher::new(thread).mix(op);
                let index = draw.below(KEYS_PER_THREAD);
                let slot = &mut model[index as usize];
                match draw.mix(1).below(10) {
                    // 60 % puts, 20 % deletes, 20 % reads.
                    0..=5 => {
                        store
                            .put(&key(thread, index), &value(thread, index, op))
                            .unwrap();
                        *slot = Some(op);
                    }
                    6 | 7 => {
                        store.delete(&key(thread, index)).unwrap();
                        *slot = None;
                    }
                    _ => {
                        let got = store.get(&key(thread, index)).unwrap();
                        match slot {
                            Some(version) => {
                                assert_eq!(got.unwrap(), value(thread, index, *version))
                            }
                            None => assert_eq!(got, None),
                        }
                    }
                }
            }
            model
        }));
    }
    let models: Vec<Vec<Option<u64>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    let compaction_rounds = compactor.join().unwrap();
    assert!(compaction_rounds > 0, "compactor never ran");

    // Every thread's model must match the store exactly.
    let mut expected_live = 0usize;
    for (thread, model) in models.iter().enumerate() {
        for (index, slot) in model.iter().enumerate() {
            let k = key(thread as u64, index as u64);
            match slot {
                Some(version) => {
                    expected_live += 1;
                    assert_eq!(
                        store.get(&k).unwrap().unwrap(),
                        value(thread as u64, index as u64, *version),
                        "{k} diverged from model"
                    );
                }
                None => assert!(!store.contains(&k), "{k} should be deleted"),
            }
        }
    }
    assert_eq!(store.len(), expected_live);
    assert_eq!(store.keys().len(), expected_live);

    // Aggregate stats must equal the sum of the per-shard stats.
    let mut summed = StoreStats::default();
    for shard in store.shard_stats() {
        summed.accumulate(&shard);
    }
    assert_eq!(summed, store.stats());

    // A final quiescent compaction leaves no garbage and loses nothing.
    store.compact().unwrap();
    assert_eq!(store.len(), expected_live);
    assert!(
        store.stats().garbage_ratio() < 0.3,
        "garbage after final compact: {:.2}",
        store.stats().garbage_ratio()
    );

    std::fs::remove_dir_all(store.dir()).ok();
}

#[test]
fn stats_totals_survive_reopen() {
    let store = SegmentStore::open_temp_with_shards("stress-reopen", 4).unwrap();
    let dir = store.dir();
    for i in 0..100u64 {
        store.put(&key(i % 4, i), &value(i % 4, i, 0)).unwrap();
    }
    let live_before = store.stats().live_bytes;
    store.sync().unwrap();
    drop(store);

    let reopened = SegmentStore::open(&dir).unwrap();
    assert_eq!(reopened.shard_count(), 4);
    assert_eq!(reopened.len(), 100);
    assert_eq!(reopened.stats().live_bytes, live_before);
    let mut summed = StoreStats::default();
    for shard in reopened.shard_stats() {
        summed.accumulate(&shard);
    }
    assert_eq!(summed, reopened.stats());
    std::fs::remove_dir_all(dir).ok();
}
