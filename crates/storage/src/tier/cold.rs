//! The cold-tier storage backend: an object-store-style [`StorageBackend`]
//! that packs named logs into immutable, chunked, checksummed objects.
//!
//! Object stores (S3-style) have no append and no partial overwrite — only
//! immutable blobs. [`ColdBackend`] maps the backend trait's named-log
//! interface onto that model:
//!
//! * every `append`/`write_all` seals one or more **immutable chunk
//!   objects** (`objects/o<seq>.obj` on the underlying device, at most
//!   [`TierOptions::cold_chunk_bytes`](crate::tier::TierOptions) each), each
//!   carrying a CRC32 in the manifest — a flipped bit in cold storage is
//!   detected at read time, not served;
//! * a **manifest** maps each log name to its ordered chunk list. It lives
//!   in memory for immediate read-after-append visibility (the store's
//!   index points readers at records the moment `put` returns) and is
//!   persisted to the device — atomically, via `write_all` — on `sync`,
//!   `write_all` and `remove`;
//! * the design is **append-only and compaction-free**: replacing or
//!   removing a log only rewrites the manifest; superseded chunk objects
//!   are left behind as garbage (cold capacity is assumed cheap), tracked
//!   by [`garbage_bytes`](ColdBackend::garbage_bytes).
//!
//! Any [`StorageBackend`] can serve as the device ([`FsBackend`] for a real
//! cold volume, [`MemBackend`] for tests), and a whole
//! [`SegmentStore`](crate::SegmentStore) runs on a `ColdBackend` unchanged —
//! `tests/backend_parity.rs` holds it to the same observable behaviour as
//! the hot backends.

use crate::backend::{LogHandle, StorageBackend};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use vstore_types::cast::{usize_from_u32, usize_from_u64};
use vstore_types::{Result, VStoreError};

/// Device name of the persisted manifest.
const MANIFEST_NAME: &str = "MANIFEST";
/// Manifest magic + format version.
const MANIFEST_MAGIC: &[u8; 4] = b"VCMF";
const MANIFEST_VERSION: u8 = 1;

/// Default chunk size: one object holds at most this many bytes. Segments
/// are hundreds of KiB, so one record usually seals exactly one object.
pub const DEFAULT_COLD_CHUNK_BYTES: u64 = 1 << 20;

/// One immutable chunk of a cold log.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChunkRef {
    /// Object sequence number (device name `objects/o<seq>.obj`).
    object: u64,
    /// Chunk length in bytes.
    len: u64,
    /// CRC32 of the chunk contents.
    crc: u32,
}

/// The manifest: each log's ordered chunk list, plus the object counter and
/// the running garbage total.
#[derive(Debug, Default)]
struct Manifest {
    logs: BTreeMap<String, Vec<ChunkRef>>,
    next_object: u64,
    garbage_bytes: u64,
}

impl Manifest {
    fn log_len(chunks: &[ChunkRef]) -> u64 {
        chunks.iter().map(|c| c.len).sum()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.push(MANIFEST_VERSION);
        out.extend_from_slice(&self.next_object.to_le_bytes());
        out.extend_from_slice(&self.garbage_bytes.to_le_bytes());
        // vstore-lint: allow(checked-cast) — one manifest entry per log, far inside u32
        out.extend_from_slice(&(self.logs.len() as u32).to_le_bytes());
        for (name, chunks) in &self.logs {
            // vstore-lint: allow(checked-cast) — log names are short by construction
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            // vstore-lint: allow(checked-cast) — chunk counts are bounded by log size
            out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
            for chunk in chunks {
                out.extend_from_slice(&chunk.object.to_le_bytes());
                out.extend_from_slice(&chunk.len.to_le_bytes());
                out.extend_from_slice(&chunk.crc.to_le_bytes());
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Manifest> {
        let mut r = ManifestReader { bytes, pos: 0 };
        if r.take(4)? != MANIFEST_MAGIC {
            return Err(VStoreError::corruption("cold manifest has bad magic"));
        }
        let version = r.take(1)?[0];
        if version != MANIFEST_VERSION {
            return Err(VStoreError::corruption(format!(
                "unsupported cold manifest version {version}"
            )));
        }
        let next_object = r.u64()?;
        let garbage_bytes = r.u64()?;
        let log_count = r.u32()?;
        let mut logs = BTreeMap::new();
        for _ in 0..log_count {
            let name_len = usize_from_u64(u64::from(r.u32()?), "cold manifest name")?;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| VStoreError::corruption("cold manifest name is not UTF-8"))?;
            let chunk_count = r.u32()?;
            let mut chunks = Vec::with_capacity(usize_from_u32(chunk_count));
            for _ in 0..chunk_count {
                chunks.push(ChunkRef {
                    object: r.u64()?,
                    len: r.u64()?,
                    crc: r.u32()?,
                });
            }
            logs.insert(name, chunks);
        }
        Ok(Manifest {
            logs,
            next_object,
            garbage_bytes,
        })
    }
}

/// A bounds-checked cursor over the serialized manifest.
struct ManifestReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ManifestReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| VStoreError::corruption("cold manifest truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// CRC32 (the value-log polynomial) over one chunk.
fn chunk_crc(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

struct ColdInner {
    device: Arc<dyn StorageBackend>,
    manifest: Mutex<Manifest>,
    chunk_bytes: u64,
}

impl ColdInner {
    fn object_name(seq: u64) -> String {
        format!("objects/o{seq:016x}.obj")
    }

    /// Seal `data` into chunk objects (splitting at the chunk size) and
    /// return their refs. The objects are written before the manifest ever
    /// references them, so a reader can never chase a missing object.
    fn seal_chunks(&self, manifest: &mut Manifest, data: &[u8]) -> Result<Vec<ChunkRef>> {
        let chunk_len = usize_from_u64(self.chunk_bytes, "cold chunk size")?;
        let mut refs = Vec::new();
        for piece in data.chunks(chunk_len.max(1)) {
            let seq = manifest.next_object;
            manifest.next_object += 1;
            self.device.write_all(&Self::object_name(seq), piece)?;
            refs.push(ChunkRef {
                object: seq,
                len: piece.len() as u64,
                crc: chunk_crc(piece),
            });
        }
        Ok(refs)
    }

    /// Retire a chunk list: its bytes become garbage (objects are immutable
    /// and never rewritten — compaction-free by design).
    fn retire(manifest: &mut Manifest, chunks: &[ChunkRef]) {
        manifest.garbage_bytes = manifest
            .garbage_bytes
            .saturating_add(Manifest::log_len(chunks));
    }

    /// Persist the manifest atomically (the device's `write_all` promises
    /// replace-or-nothing).
    fn persist(&self, manifest: &Manifest) -> Result<()> {
        self.device.write_all(MANIFEST_NAME, &manifest.encode())
    }

    /// Read and CRC-verify one whole chunk.
    fn read_chunk(&self, chunk: &ChunkRef) -> Result<Vec<u8>> {
        let data = self
            .device
            .read_at(&Self::object_name(chunk.object), 0, chunk.len)?;
        if chunk_crc(&data) != chunk.crc {
            return Err(VStoreError::corruption(format!(
                "cold object {} failed its checksum",
                Self::object_name(chunk.object)
            )));
        }
        Ok(data)
    }

    fn not_found(name: &str) -> VStoreError {
        VStoreError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("cold log {name} does not exist"),
        ))
    }
}

/// The object-store-style cold backend. See the [module docs](self).
pub struct ColdBackend {
    inner: Arc<ColdInner>,
}

impl std::fmt::Debug for ColdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let manifest = self.inner.manifest.lock();
        f.debug_struct("ColdBackend")
            .field("device", &self.inner.device.describe())
            .field("logs", &manifest.logs.len())
            .field("objects", &manifest.next_object)
            .field("chunk_bytes", &self.inner.chunk_bytes)
            .finish()
    }
}

impl ColdBackend {
    /// A cold backend over `device` with the default chunk size, loading the
    /// persisted manifest if one exists.
    pub fn new(device: Arc<dyn StorageBackend>) -> Result<ColdBackend> {
        Self::with_chunk_bytes(device, DEFAULT_COLD_CHUNK_BYTES)
    }

    /// [`new`](Self::new) with an explicit chunk size (clamped to ≥ 1).
    pub fn with_chunk_bytes(
        device: Arc<dyn StorageBackend>,
        chunk_bytes: u64,
    ) -> Result<ColdBackend> {
        let manifest = match device.read_all(MANIFEST_NAME)? {
            Some(bytes) => Manifest::decode(&bytes)?,
            None => Manifest::default(),
        };
        Ok(ColdBackend {
            inner: Arc::new(ColdInner {
                device,
                manifest: Mutex::new(manifest),
                chunk_bytes: chunk_bytes.max(1),
            }),
        })
    }

    /// Bytes held by superseded or removed chunk objects (never reclaimed —
    /// the cold tier is compaction-free).
    #[must_use]
    pub fn garbage_bytes(&self) -> u64 {
        self.inner.manifest.lock().garbage_bytes
    }

    /// Number of chunk objects ever sealed.
    #[must_use]
    pub fn object_count(&self) -> u64 {
        self.inner.manifest.lock().next_object
    }
}

/// An append handle to one cold log: appends seal chunk objects and extend
/// the in-memory manifest immediately; `sync` persists the manifest.
struct ColdLogHandle {
    inner: Arc<ColdInner>,
    name: String,
}

impl std::fmt::Debug for ColdLogHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdLogHandle")
            .field("name", &self.name)
            .finish()
    }
}

impl LogHandle for ColdLogHandle {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let mut manifest = self.inner.manifest.lock();
        // Objects first, manifest second — see `seal_chunks`.
        let refs = self.inner.seal_chunks(&mut manifest, data)?;
        manifest
            .logs
            .entry(self.name.clone())
            .or_default()
            .extend(refs);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let manifest = self.inner.manifest.lock();
        self.inner.persist(&manifest)
    }
}

impl StorageBackend for ColdBackend {
    fn open(&self, name: &str, truncate: bool) -> Result<Box<dyn LogHandle>> {
        if name.is_empty() {
            return Err(VStoreError::invalid_argument("empty cold log name"));
        }
        let mut manifest = self.inner.manifest.lock();
        if truncate {
            if let Some(old) = manifest.logs.insert(name.to_owned(), Vec::new()) {
                ColdInner::retire(&mut manifest, &old);
            }
        } else {
            manifest.logs.entry(name.to_owned()).or_default();
        }
        drop(manifest);
        Ok(Box::new(ColdLogHandle {
            inner: Arc::clone(&self.inner),
            name: name.to_owned(),
        }))
    }

    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let chunks = {
            let manifest = self.inner.manifest.lock();
            manifest
                .logs
                .get(name)
                .ok_or_else(|| ColdInner::not_found(name))?
                .clone()
        };
        let total = Manifest::log_len(&chunks);
        let in_range = offset.checked_add(len).is_some_and(|end| end <= total);
        if !in_range {
            // The same error class the hot backends surface for a read past
            // the end of a log.
            return Err(VStoreError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("read past end of cold log {name}: {offset}+{len} > {total}"),
            )));
        }
        let mut out = Vec::with_capacity(usize_from_u64(len, "cold read")?);
        let mut chunk_start = 0u64;
        for chunk in &chunks {
            let chunk_end = chunk_start + chunk.len;
            if chunk_end > offset && chunk_start < offset + len {
                let data = self.inner.read_chunk(chunk)?;
                let from = offset.saturating_sub(chunk_start);
                let to = (offset + len - chunk_start).min(chunk.len);
                // Both bounds are within one resident chunk.
                out.extend_from_slice(
                    &data[usize_from_u64(from, "cold read")?..usize_from_u64(to, "cold read")?],
                );
            }
            chunk_start = chunk_end;
            if chunk_start >= offset + len {
                break;
            }
        }
        Ok(out)
    }

    fn read_all(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let chunks = {
            let manifest = self.inner.manifest.lock();
            match manifest.logs.get(name) {
                Some(chunks) => chunks.clone(),
                None => return Ok(None),
            }
        };
        let mut out = Vec::with_capacity(usize_from_u64(Manifest::log_len(&chunks), "cold read")?);
        for chunk in &chunks {
            out.extend_from_slice(&self.inner.read_chunk(chunk)?);
        }
        Ok(Some(out))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> Result<()> {
        if name.is_empty() {
            return Err(VStoreError::invalid_argument("empty cold log name"));
        }
        let mut manifest = self.inner.manifest.lock();
        let refs = self.inner.seal_chunks(&mut manifest, data)?;
        if let Some(old) = manifest.logs.insert(name.to_owned(), refs) {
            ColdInner::retire(&mut manifest, &old);
        }
        self.inner.persist(&manifest)
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut manifest = self.inner.manifest.lock();
        if let Some(old) = manifest.logs.remove(name) {
            ColdInner::retire(&mut manifest, &old);
            self.inner.persist(&manifest)?;
        }
        Ok(())
    }

    fn len(&self, name: &str) -> Result<Option<u64>> {
        let manifest = self.inner.manifest.lock();
        Ok(manifest
            .logs
            .get(name)
            .map(|chunks| Manifest::log_len(chunks)))
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        let manifest = self.inner.manifest.lock();
        let children: BTreeSet<String> = manifest
            .logs
            .keys()
            .filter_map(|name| name.strip_prefix(&prefix))
            .map(|rest| match rest.split_once('/') {
                Some((first, _)) => first.to_owned(),
                None => rest.to_owned(),
            })
            .collect();
        Ok(children.into_iter().collect())
    }

    fn describe(&self) -> String {
        format!("cold:{}", self.inner.device.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn cold() -> ColdBackend {
        ColdBackend::new(Arc::new(MemBackend::new())).unwrap()
    }

    #[test]
    fn append_read_round_trip_with_immediate_visibility() {
        let backend = cold();
        let mut log = backend.open("shard-000/vlog-00000001.dat", true).unwrap();
        log.append(b"hello ").unwrap();
        log.append(b"world").unwrap();
        // Visible before any sync: the store's index reads the moment a put
        // returns.
        assert_eq!(
            backend.len("shard-000/vlog-00000001.dat").unwrap(),
            Some(11)
        );
        assert_eq!(
            backend
                .read_at("shard-000/vlog-00000001.dat", 6, 5)
                .unwrap(),
            b"world"
        );
        assert_eq!(
            backend
                .read_all("shard-000/vlog-00000001.dat")
                .unwrap()
                .unwrap(),
            b"hello world"
        );
    }

    #[test]
    fn reads_span_chunk_boundaries() {
        let device: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let backend = ColdBackend::with_chunk_bytes(device, 4).unwrap();
        let mut log = backend.open("log", true).unwrap();
        log.append(b"abcdefghij").unwrap(); // chunks: abcd | efgh | ij
        assert_eq!(backend.object_count(), 3);
        assert_eq!(backend.read_at("log", 2, 6).unwrap(), b"cdefgh");
        assert_eq!(backend.read_at("log", 0, 10).unwrap(), b"abcdefghij");
        assert_eq!(backend.read_at("log", 9, 1).unwrap(), b"j");
        assert!(backend.read_at("log", 8, 3).is_err(), "past-end read");
    }

    #[test]
    fn manifest_survives_reopen_on_a_shared_device() {
        let device: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        {
            let backend = ColdBackend::new(Arc::clone(&device)).unwrap();
            let mut log = backend.open("a/b", true).unwrap();
            log.append(b"persisted").unwrap();
            log.sync().unwrap();
            backend.write_all("meta", b"7\n").unwrap();
        }
        let reopened = ColdBackend::new(device).unwrap();
        assert_eq!(reopened.read_all("a/b").unwrap().unwrap(), b"persisted");
        assert_eq!(reopened.read_all("meta").unwrap().unwrap(), b"7\n");
        assert_eq!(reopened.list("").unwrap(), vec!["a", "meta"]);
    }

    #[test]
    fn replace_and_remove_are_compaction_free() {
        let backend = cold();
        backend.write_all("log", b"old-bytes").unwrap();
        let objects_before = backend.object_count();
        backend.write_all("log", b"new").unwrap();
        assert_eq!(backend.read_all("log").unwrap().unwrap(), b"new");
        assert!(
            backend.object_count() > objects_before,
            "objects are immutable"
        );
        assert_eq!(backend.garbage_bytes(), 9, "old bytes become garbage");
        backend.remove("log").unwrap();
        assert_eq!(backend.read_all("log").unwrap(), None);
        assert_eq!(backend.garbage_bytes(), 12);
        backend.remove("log").unwrap(); // idempotent
    }

    #[test]
    fn corrupted_object_fails_its_checksum() {
        let device: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let backend = ColdBackend::new(Arc::clone(&device)).unwrap();
        backend.write_all("log", b"precious-bytes").unwrap();
        // Flip a bit in the single chunk object on the device.
        let object = ColdInner::object_name(0);
        let mut bytes = device.read_all(&object).unwrap().unwrap();
        bytes[0] ^= 0x01;
        device.write_all(&object, &bytes).unwrap();
        let err = backend.read_all("log").unwrap_err();
        assert!(matches!(err, VStoreError::Corruption(_)), "{err}");
    }

    #[test]
    fn missing_logs_match_hot_backend_error_behaviour() {
        let backend = cold();
        assert_eq!(backend.read_all("nope").unwrap(), None);
        assert_eq!(backend.len("nope").unwrap(), None);
        assert!(matches!(
            backend.read_at("nope", 0, 1).unwrap_err(),
            VStoreError::Io(_)
        ));
        assert!(backend.list("nope").unwrap().is_empty());
    }
}
