//! A [`StorageBackend`] composing a **hot** backend and a **cold** backend
//! behind one namespace, with a persisted placement map.
//!
//! Logs are born hot (the active value logs a shard appends to must stay on
//! fast storage); [`demote_log`](TieredBackend::demote_log) moves a sealed
//! log's bytes to the cold backend and [`promote_log`](TieredBackend::promote_log)
//! brings them back. The placement map — which logs are cold, grouped
//! per shard by the `shard-XXX/` name prefix — is persisted in a
//! `TIER_PLACEMENT` meta log on the hot backend (atomically, via
//! `write_all`), so a reopened store keeps routing reads to the tier that
//! holds the bytes. Every read is routed by placement; a
//! [`SegmentStore`](crate::SegmentStore) on a `TieredBackend` is
//! observationally identical to one on a single-tier backend
//! (`tests/backend_parity.rs` enforces it).

use crate::backend::{LogHandle, StorageBackend};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use vstore_types::cast::usize_from_u64;
use vstore_types::{Result, VStoreError};

/// Hot-backend name of the persisted placement map.
const PLACEMENT_NAME: &str = "TIER_PLACEMENT";
/// Placement map magic + format version.
const PLACEMENT_MAGIC: &[u8; 4] = b"VTPL";
const PLACEMENT_VERSION: u8 = 1;

/// Log-migration counters of one [`TieredBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TieredBackendStats {
    /// Logs currently placed on the cold backend.
    pub cold_logs: usize,
    /// Reads (`read_at`/`read_all`) served by the cold backend.
    pub cold_reads: u64,
    /// Logs demoted hot → cold since open.
    pub demoted_logs: u64,
    /// Bytes demoted hot → cold since open.
    pub demoted_bytes: u64,
    /// Logs promoted cold → hot since open.
    pub promoted_logs: u64,
    /// Bytes promoted cold → hot since open.
    pub promoted_bytes: u64,
}

#[derive(Default)]
struct Placement {
    /// Names currently living on the cold backend; everything else is hot.
    cold: BTreeSet<String>,
    cold_reads: u64,
    demoted_logs: u64,
    demoted_bytes: u64,
    promoted_logs: u64,
    promoted_bytes: u64,
}

impl Placement {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(PLACEMENT_MAGIC);
        out.push(PLACEMENT_VERSION);
        // vstore-lint: allow(checked-cast) — placement holds segment names, far inside u32
        out.extend_from_slice(&(self.cold.len() as u32).to_le_bytes());
        for name in &self.cold {
            // vstore-lint: allow(checked-cast) — segment names are short by construction
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<BTreeSet<String>> {
        let corrupt = || VStoreError::corruption("tier placement map truncated");
        if bytes.len() < 9 || &bytes[0..4] != PLACEMENT_MAGIC {
            return Err(VStoreError::corruption("tier placement map has bad magic"));
        }
        if bytes[4] != PLACEMENT_VERSION {
            return Err(VStoreError::corruption(format!(
                "unsupported tier placement version {}",
                bytes[4]
            )));
        }
        let count = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
        let mut pos = 9usize;
        let mut cold = BTreeSet::new();
        for _ in 0..count {
            let len_end = pos
                .checked_add(4)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(corrupt)?;
            let len = usize_from_u64(
                u64::from(u32::from_le_bytes([
                    bytes[pos],
                    bytes[pos + 1],
                    bytes[pos + 2],
                    bytes[pos + 3],
                ])),
                "tier placement name",
            )?;
            let end = len_end
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(corrupt)?;
            let name = String::from_utf8(bytes[len_end..end].to_vec())
                .map_err(|_| VStoreError::corruption("tier placement name is not UTF-8"))?;
            cold.insert(name);
            pos = end;
        }
        Ok(cold)
    }
}

/// The two-tier backend. See the [module docs](self).
pub struct TieredBackend {
    hot: Arc<dyn StorageBackend>,
    cold: Arc<dyn StorageBackend>,
    placement: Mutex<Placement>,
}

impl std::fmt::Debug for TieredBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredBackend")
            .field("hot", &self.hot.describe())
            .field("cold", &self.cold.describe())
            .field("cold_logs", &self.placement.lock().cold.len())
            .finish()
    }
}

impl TieredBackend {
    /// A tiered backend over `hot` and `cold`, reloading any placement map
    /// persisted by a previous instance on the hot backend.
    pub fn new(
        hot: Arc<dyn StorageBackend>,
        cold: Arc<dyn StorageBackend>,
    ) -> Result<TieredBackend> {
        let cold_names = match hot.read_all(PLACEMENT_NAME)? {
            Some(bytes) => Placement::decode(&bytes)?,
            None => BTreeSet::new(),
        };
        Ok(TieredBackend {
            hot,
            cold,
            placement: Mutex::new(Placement {
                cold: cold_names,
                ..Placement::default()
            }),
        })
    }

    /// Migration counters and current cold-log count.
    #[must_use]
    pub fn stats(&self) -> TieredBackendStats {
        let p = self.placement.lock();
        TieredBackendStats {
            cold_logs: p.cold.len(),
            cold_reads: p.cold_reads,
            demoted_logs: p.demoted_logs,
            demoted_bytes: p.demoted_bytes,
            promoted_logs: p.promoted_logs,
            promoted_bytes: p.promoted_bytes,
        }
    }

    /// `true` when the named log currently lives on the cold backend.
    #[must_use]
    pub fn is_cold(&self, name: &str) -> bool {
        self.placement.lock().cold.contains(name)
    }

    fn persist(&self, placement: &Placement) -> Result<()> {
        self.hot.write_all(PLACEMENT_NAME, &placement.encode())
    }

    /// Demote one log's bytes hot → cold; returns the bytes moved.
    /// Demoting an already-cold log is a no-op; demoting a missing log is an
    /// error. The bytes land cold before the placement flips and the hot
    /// copy is removed, so a concurrent reader always finds one full copy.
    pub fn demote_log(&self, name: &str) -> Result<u64> {
        if self.is_cold(name) {
            return Ok(0);
        }
        let data = self
            .hot
            .read_all(name)?
            .ok_or_else(|| VStoreError::not_found(format!("cannot demote missing log {name}")))?;
        self.cold.write_all(name, &data)?;
        let mut placement = self.placement.lock();
        placement.cold.insert(name.to_owned());
        placement.demoted_logs += 1;
        placement.demoted_bytes = placement.demoted_bytes.saturating_add(data.len() as u64);
        self.persist(&placement)?;
        drop(placement);
        self.hot.remove(name)?;
        Ok(data.len() as u64)
    }

    /// Promote one log's bytes cold → hot; returns the bytes moved.
    /// Promoting a hot log is a no-op.
    pub fn promote_log(&self, name: &str) -> Result<u64> {
        if !self.is_cold(name) {
            return Ok(0);
        }
        let data = self.cold.read_all(name)?.ok_or_else(|| {
            VStoreError::corruption(format!("placement says {name} is cold but it is missing"))
        })?;
        self.hot.write_all(name, &data)?;
        let mut placement = self.placement.lock();
        placement.cold.remove(name);
        placement.promoted_logs += 1;
        placement.promoted_bytes = placement.promoted_bytes.saturating_add(data.len() as u64);
        self.persist(&placement)?;
        drop(placement);
        self.cold.remove(name)?;
        Ok(data.len() as u64)
    }

    /// Route a read: `true` = cold (also counts it).
    fn reads_cold(&self, name: &str) -> bool {
        let mut placement = self.placement.lock();
        if placement.cold.contains(name) {
            placement.cold_reads += 1;
            true
        } else {
            false
        }
    }
}

impl StorageBackend for TieredBackend {
    fn open(&self, name: &str, truncate: bool) -> Result<Box<dyn LogHandle>> {
        // Active (appendable) logs always live hot. A cold log being
        // reopened for append is pulled back first so its existing bytes
        // stay reachable through the one hot handle.
        if self.is_cold(name) {
            if truncate {
                let mut placement = self.placement.lock();
                placement.cold.remove(name);
                self.persist(&placement)?;
                drop(placement);
                self.cold.remove(name)?;
            } else {
                self.promote_log(name)?;
            }
        }
        self.hot.open(name, truncate)
    }

    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        if self.reads_cold(name) {
            return self.cold.read_at(name, offset, len);
        }
        match self.hot.read_at(name, offset, len) {
            // A demotion can complete between the routing decision and the
            // hot read; the full cold copy already exists, so retry there
            // instead of surfacing a spurious miss.
            Err(_) if self.reads_cold(name) => self.cold.read_at(name, offset, len),
            other => other,
        }
    }

    fn read_all(&self, name: &str) -> Result<Option<Vec<u8>>> {
        if self.reads_cold(name) {
            return self.cold.read_all(name);
        }
        match self.hot.read_all(name) {
            // See `read_at`: a concurrent demotion moved the log cold.
            Ok(None) if self.reads_cold(name) => self.cold.read_all(name),
            other => other,
        }
    }

    fn write_all(&self, name: &str, data: &[u8]) -> Result<()> {
        // Replacement lands hot (meta files are hot by definition); a cold
        // copy of the name is superseded and dropped.
        self.hot.write_all(name, data)?;
        let mut placement = self.placement.lock();
        if placement.cold.remove(name) {
            self.persist(&placement)?;
            drop(placement);
            self.cold.remove(name)?;
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut placement = self.placement.lock();
        if placement.cold.remove(name) {
            self.persist(&placement)?;
            drop(placement);
            self.cold.remove(name)
        } else {
            drop(placement);
            self.hot.remove(name)
        }
    }

    fn len(&self, name: &str) -> Result<Option<u64>> {
        if self.reads_cold(name) {
            return self.cold.len(name);
        }
        match self.hot.len(name) {
            // See `read_at`: a concurrent demotion moved the log cold.
            Ok(None) if self.reads_cold(name) => self.cold.len(name),
            other => other,
        }
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        let mut children: BTreeSet<String> = self.hot.list(dir)?.into_iter().collect();
        // The placement meta log is an implementation detail, not store data.
        if dir.is_empty() {
            children.remove(PLACEMENT_NAME);
        }
        let placement = self.placement.lock();
        for name in &placement.cold {
            if let Some(rest) = name.strip_prefix(&prefix) {
                children.insert(match rest.split_once('/') {
                    Some((first, _)) => first.to_owned(),
                    None => rest.to_owned(),
                });
            }
        }
        Ok(children.into_iter().collect())
    }

    fn describe(&self) -> String {
        format!(
            "tiered[hot:{} cold:{}]",
            self.hot.describe(),
            self.cold.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::tier::cold::ColdBackend;

    fn tiered() -> (TieredBackend, Arc<dyn StorageBackend>) {
        let hot: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let cold: Arc<dyn StorageBackend> =
            Arc::new(ColdBackend::new(Arc::new(MemBackend::new())).unwrap());
        (TieredBackend::new(Arc::clone(&hot), cold).unwrap(), hot)
    }

    #[test]
    fn logs_are_born_hot_and_round_trip() {
        let (backend, _) = tiered();
        let mut log = backend.open("shard-000/vlog-00000001.dat", true).unwrap();
        log.append(b"hot bytes").unwrap();
        log.sync().unwrap();
        assert!(!backend.is_cold("shard-000/vlog-00000001.dat"));
        assert_eq!(
            backend
                .read_at("shard-000/vlog-00000001.dat", 4, 5)
                .unwrap(),
            b"bytes"
        );
    }

    #[test]
    fn demote_then_read_serves_identical_bytes_from_cold() {
        let (backend, hot) = tiered();
        backend
            .write_all("shard-001/vlog-00000001.dat", b"sealed log")
            .unwrap();
        let moved = backend.demote_log("shard-001/vlog-00000001.dat").unwrap();
        assert_eq!(moved, 10);
        assert!(backend.is_cold("shard-001/vlog-00000001.dat"));
        assert_eq!(
            hot.read_all("shard-001/vlog-00000001.dat").unwrap(),
            None,
            "hot copy is gone"
        );
        assert_eq!(
            backend
                .read_all("shard-001/vlog-00000001.dat")
                .unwrap()
                .unwrap(),
            b"sealed log"
        );
        assert_eq!(
            backend
                .read_at("shard-001/vlog-00000001.dat", 7, 3)
                .unwrap(),
            b"log"
        );
        let stats = backend.stats();
        assert_eq!(stats.cold_logs, 1);
        assert_eq!(stats.demoted_bytes, 10);
        assert!(stats.cold_reads >= 2);
        // Demoting again is a no-op; promote restores the hot copy.
        assert_eq!(
            backend.demote_log("shard-001/vlog-00000001.dat").unwrap(),
            0
        );
        assert_eq!(
            backend.promote_log("shard-001/vlog-00000001.dat").unwrap(),
            10
        );
        assert!(!backend.is_cold("shard-001/vlog-00000001.dat"));
        assert_eq!(
            backend
                .read_all("shard-001/vlog-00000001.dat")
                .unwrap()
                .unwrap(),
            b"sealed log"
        );
    }

    #[test]
    fn placement_survives_reopen_on_shared_backends() {
        let hot: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let cold: Arc<dyn StorageBackend> =
            Arc::new(ColdBackend::new(Arc::new(MemBackend::new())).unwrap());
        {
            let backend = TieredBackend::new(Arc::clone(&hot), Arc::clone(&cold)).unwrap();
            backend
                .write_all("shard-000/vlog-00000001.dat", b"aging")
                .unwrap();
            backend.demote_log("shard-000/vlog-00000001.dat").unwrap();
        }
        let reopened = TieredBackend::new(hot, cold).unwrap();
        assert!(reopened.is_cold("shard-000/vlog-00000001.dat"));
        assert_eq!(
            reopened
                .read_all("shard-000/vlog-00000001.dat")
                .unwrap()
                .unwrap(),
            b"aging"
        );
    }

    #[test]
    fn list_merges_tiers_and_hides_the_placement_meta() {
        let (backend, _) = tiered();
        backend.write_all("SHARDS", b"2\n").unwrap();
        backend.write_all("shard-000/a.dat", b"x").unwrap();
        backend.write_all("shard-001/b.dat", b"y").unwrap();
        backend.demote_log("shard-001/b.dat").unwrap();
        assert_eq!(
            backend.list("").unwrap(),
            vec!["SHARDS", "shard-000", "shard-001"]
        );
        assert_eq!(backend.list("shard-001").unwrap(), vec!["b.dat"]);
        backend.remove("shard-001/b.dat").unwrap();
        assert!(backend.list("shard-001").unwrap().is_empty());
    }

    #[test]
    fn reopening_a_cold_log_for_append_promotes_it_first() {
        let (backend, _) = tiered();
        backend.write_all("log", b"one").unwrap();
        backend.demote_log("log").unwrap();
        let mut handle = backend.open("log", false).unwrap();
        handle.append(b"two").unwrap();
        assert!(!backend.is_cold("log"));
        assert_eq!(backend.read_all("log").unwrap().unwrap(), b"onetwo");
        // Truncating reopen of a cold log just drops the cold copy.
        backend.demote_log("log").unwrap();
        let mut handle = backend.open("log", true).unwrap();
        handle.append(b"z").unwrap();
        assert_eq!(backend.read_all("log").unwrap().unwrap(), b"z");
    }
}
