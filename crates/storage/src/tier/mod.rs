//! Tiered cold storage: erosion that **demotes instead of deletes**.
//!
//! VStore's data erosion (§4.4 of the paper) ages video gracefully by
//! shrinking what is stored — but a deletion is forever. This module adds a
//! cold tier behind the same [`StorageBackend`](crate::StorageBackend) seam
//! so aged segments move to cheap, slow storage and stay queryable:
//!
//! * [`ColdBackend`] — an object-store-style backend packing named logs
//!   into immutable, chunked, checksummed objects with a manifest
//!   (append-only, compaction-free);
//! * [`TieredBackend`] — a hot backend + cold backend composed behind one
//!   namespace, with a per-shard placement map persisted in store meta and
//!   explicit log demotion/promotion;
//! * [`TierEngine`] — the segment-level demotion engine: erosion enqueues
//!   demotions onto a bounded background migration queue (back-pressure,
//!   panic-isolated workers, a configurable byte/s budget) instead of
//!   issuing deletes, and cold hits on the read path promote segments back
//!   through the [`SegmentReader`](crate::SegmentReader) so both cache
//!   tiers stay coherent;
//! * [`TierStats`] — resident bytes per tier, demotion/promotion counters
//!   and a cold-hit latency histogram, folded into `VStore::stats_report`.
//!
//! With no cold tier configured ([`TierOptions::default`]), nothing
//! changes: erosion deletes, exactly as before.

mod cold;
mod engine;
mod tiered;

pub use cold::{ColdBackend, DEFAULT_COLD_CHUNK_BYTES};
pub use engine::{DemoteBatchReport, TierEngine, TierStats};
pub use tiered::{TieredBackend, TieredBackendStats};

use crate::backend::BackendOptions;
use vstore_types::{Result, VStoreError};

/// Smallest accepted [`TierOptions::cold_chunk_bytes`]: 4 KiB. Below this a
/// single segment would shatter into hundreds of objects and the manifest
/// would dwarf the data.
pub const MIN_COLD_CHUNK_BYTES: u64 = 4 << 10;

/// Options of the tiering subsystem, validated like `RuntimeOptions`: a bad
/// knob is rejected with [`VStoreError::InvalidArgument`] at open time, not
/// deep inside a migration worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierOptions {
    /// Where the cold tier lives: `None` disables tiering entirely (erosion
    /// deletes, byte-identical to the untiered store), `Some(backend)`
    /// roots a [`ColdBackend`] on that device (`Fs` under
    /// `<store dir>/cold-tier`, `Mem` for tests and benchmarks).
    pub cold_backend: Option<BackendOptions>,
    /// Migration pacing: each worker that moves N bytes owes `N / budget`
    /// seconds before its next job. 0 = unthrottled.
    pub demote_budget_bytes_per_sec: u64,
    /// Read-through promotion: when `true` (the default), a cold hit moves
    /// the segment back to the hot store; when `false`, cold segments are
    /// served in place (every read pays the cold fetch).
    pub promotion: bool,
    /// Background migration worker threads draining the demotion queue.
    pub demote_workers: usize,
    /// Capacity of the bounded demotion queue; a full queue blocks the
    /// eroding caller (back-pressure), it never grows without bound.
    pub demote_queue_depth: usize,
    /// Chunk size of the cold tier's immutable objects.
    pub cold_chunk_bytes: u64,
}

impl TierOptions {
    /// Tiering disabled: erosion deletes, exactly as without this module.
    pub fn disabled() -> Self {
        TierOptions {
            cold_backend: None,
            demote_budget_bytes_per_sec: 0,
            promotion: true,
            demote_workers: 2,
            demote_queue_depth: 64,
            cold_chunk_bytes: DEFAULT_COLD_CHUNK_BYTES,
        }
    }

    /// A cold tier on the chosen backend, with defaults for everything
    /// else.
    pub fn cold(backend: BackendOptions) -> Self {
        TierOptions {
            cold_backend: Some(backend),
            ..TierOptions::disabled()
        }
    }

    /// An in-memory cold tier (tests and benchmarks).
    pub fn cold_mem() -> Self {
        Self::cold(BackendOptions::Mem)
    }

    /// A filesystem cold tier rooted under `<store dir>/cold-tier`.
    pub fn cold_fs() -> Self {
        Self::cold(BackendOptions::Fs)
    }

    /// Replace the migration byte/s budget (0 = unthrottled).
    pub fn with_demote_budget(mut self, bytes_per_sec: u64) -> Self {
        self.demote_budget_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Enable or disable read-through promotion on cold hits.
    pub fn with_promotion(mut self, promotion: bool) -> Self {
        self.promotion = promotion;
        self
    }

    /// Replace the migration worker count and queue capacity.
    pub fn with_demote_queue(mut self, workers: usize, queue_depth: usize) -> Self {
        self.demote_workers = workers;
        self.demote_queue_depth = queue_depth;
        self
    }

    /// `true` when a cold backend is configured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.cold_backend.is_some()
    }

    /// Reject configurations with zeroed or useless knobs, mirroring
    /// `RuntimeOptions::validate`.
    pub fn validate(&self) -> Result<()> {
        let reject = |knob: &str| {
            Err(VStoreError::invalid_argument(format!(
                "TierOptions::{knob} must be >= 1"
            )))
        };
        if self.demote_workers == 0 {
            return reject("demote_workers");
        }
        if self.demote_queue_depth == 0 {
            return reject("demote_queue_depth");
        }
        if self.cold_chunk_bytes < MIN_COLD_CHUNK_BYTES {
            return Err(VStoreError::invalid_argument(format!(
                "TierOptions::cold_chunk_bytes must be at least {MIN_COLD_CHUNK_BYTES} \
                 bytes; {} would shatter segments into needless objects",
                self.cold_chunk_bytes
            )));
        }
        Ok(())
    }
}

impl Default for TierOptions {
    fn default() -> Self {
        TierOptions::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_disabled_and_valid() {
        let opts = TierOptions::default();
        assert!(!opts.is_enabled());
        assert!(opts.promotion);
        assert!(opts.validate().is_ok());
        assert!(TierOptions::cold_mem().is_enabled());
        assert!(TierOptions::cold_fs().validate().is_ok());
    }

    #[test]
    fn builders_replace_each_knob() {
        let opts = TierOptions::cold_mem()
            .with_demote_budget(8 << 20)
            .with_promotion(false)
            .with_demote_queue(3, 17);
        assert_eq!(opts.demote_budget_bytes_per_sec, 8 << 20);
        assert!(!opts.promotion);
        assert_eq!(opts.demote_workers, 3);
        assert_eq!(opts.demote_queue_depth, 17);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zeroed_and_tiny_knobs() {
        for opts in [
            TierOptions::cold_mem().with_demote_queue(0, 1),
            TierOptions::cold_mem().with_demote_queue(1, 0),
            TierOptions {
                cold_chunk_bytes: MIN_COLD_CHUNK_BYTES - 1,
                ..TierOptions::cold_mem()
            },
        ] {
            let err = opts.validate().unwrap_err();
            assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
        }
    }
}
