//! The segment-level tiering engine: a bounded background migration queue
//! that **demotes** segments to a cold [`SegmentStore`] instead of deleting
//! them, and a read-through **promotion** path that brings cold segments
//! back on access.
//!
//! ```text
//!  erosion ──demote batch──► bounded queue ──► migration workers ──► cold store
//!                             (back-pressure)   (hot get → cold put → hot delete,
//!                                                paced by the byte/s budget)
//!  query ──hot miss──► SegmentReader ──cold hit──► promote (hot put → cold delete)
//! ```
//!
//! * **Demotion** reuses the serving layer's bounded-queue discipline: a
//!   batch enqueues one job per key, blocking when the queue is full (the
//!   migration backlog can never grow without bound), and waits for its
//!   jobs to drain. Workers run each job under
//!   [`vstore_sim::catch_panic`] — a panicking migration fails one segment,
//!   never the engine — and pace themselves to
//!   [`TierOptions::demote_budget_bytes_per_sec`].
//! * **Ordering** makes data loss impossible: a demotion writes the cold
//!   copy before deleting the hot one, and a promotion writes the hot copy
//!   before deleting the cold one, so every moment in time has at least one
//!   full copy of the segment. The hot-side delete and put flow through the
//!   [`SegmentReader`], so both cache tiers are epoch-invalidated exactly
//!   like an erosion delete or an ingest overwrite.
//! * **Observability**: [`TierStats`] reports resident bytes per tier,
//!   demotion/promotion counts and bytes, queue depth, and a cold-hit
//!   latency histogram; every rate is 0 %-safe on an idle engine.

use crate::key::SegmentKey;
use crate::reader::SegmentReader;
use crate::store::SegmentStore;
use crate::tier::TierOptions;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vstore_sim::sync::{lock_unpoisoned, wait_unpoisoned};
use vstore_sim::{catch_panic, panic_message, BoundedQueue};
use vstore_types::{ByteSize, LatencyHistogram, QueueFullPolicy, Result, VStoreError};

/// One snapshot of the tiering subsystem's statistics, folded into
/// `VStore::stats_report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TierStats {
    /// Live bytes resident in the hot store.
    pub hot_resident_bytes: u64,
    /// Live bytes resident in the cold store.
    pub cold_resident_bytes: u64,
    /// Segments currently held by the cold store.
    pub cold_segments: usize,
    /// Segments demoted hot → cold since open.
    pub demotions: u64,
    /// Bytes demoted hot → cold since open.
    pub demoted_bytes: u64,
    /// Segments promoted cold → hot since open (read-through).
    pub promotions: u64,
    /// Bytes promoted cold → hot since open.
    pub promoted_bytes: u64,
    /// Reads served by the cold tier (hot misses that hit cold).
    pub cold_hits: u64,
    /// Hot misses that missed the cold tier too.
    pub cold_misses: u64,
    /// Demotions that failed (the segment stayed hot).
    pub failed_demotions: u64,
    /// Migration jobs waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Deepest the migration queue has ever been.
    pub peak_queue_depth: usize,
    /// Latency of cold-tier fetches (read + checksum + promotion write).
    pub cold_hit_latency: LatencyHistogram,
}

impl TierStats {
    /// Fraction of cold-tier lookups that found the segment (0.0 when idle —
    /// never NaN).
    #[must_use]
    pub fn cold_hit_rate(&self) -> f64 {
        let total = self.cold_hits.saturating_add(self.cold_misses);
        if total == 0 {
            0.0
        } else {
            self.cold_hits as f64 / total as f64
        }
    }

    /// `true` when no segment has ever moved or been looked up cold.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.demotions == 0 && self.promotions == 0 && self.cold_hits == 0 && self.cold_misses == 0
    }
}

impl std::fmt::Display for TierStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tier: {} hot / {} cold ({} cold segments), {} demotions ({}), \
             {} promotions ({}), {} failed, queue {} (peak {})",
            ByteSize(self.hot_resident_bytes),
            ByteSize(self.cold_resident_bytes),
            self.cold_segments,
            self.demotions,
            ByteSize(self.demoted_bytes),
            self.promotions,
            ByteSize(self.promoted_bytes),
            self.failed_demotions,
            self.queue_depth,
            self.peak_queue_depth,
        )?;
        write!(
            f,
            "  cold hits: {}/{} ({:.0}%), latency: {}",
            self.cold_hits,
            self.cold_hits.saturating_add(self.cold_misses),
            self.cold_hit_rate() * 100.0,
            self.cold_hit_latency,
        )
    }
}

/// The result of one demotion batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemoteBatchReport {
    /// Segments moved to the cold store.
    pub segments: usize,
    /// Bytes moved to the cold store.
    pub bytes: u64,
    /// Segments skipped because they were already gone from the hot store
    /// (e.g. raced by a concurrent overwrite or erosion).
    pub skipped: usize,
}

/// One queued migration job and the batch it reports back to.
struct DemoteJob {
    key: SegmentKey,
    batch: Arc<BatchState>,
}

/// Completion state shared by a batch's jobs and its waiting submitter.
struct BatchState {
    progress: Mutex<BatchProgress>,
    done: Condvar,
}

#[derive(Default)]
struct BatchProgress {
    remaining: usize,
    segments: usize,
    bytes: u64,
    skipped: usize,
    first_error: Option<VStoreError>,
}

/// Counters behind one short-held mutex (migration I/O never runs under
/// it); the migration queue itself is the shared [`BoundedQueue`].
struct EngineState {
    demotions: u64,
    demoted_bytes: u64,
    promotions: u64,
    promoted_bytes: u64,
    cold_hits: u64,
    cold_misses: u64,
    failed_demotions: u64,
    cold_hit_latency: LatencyHistogram,
}

struct EngineShared {
    /// The bounded migration queue: closing it is what shutdown means.
    queue: BoundedQueue<DemoteJob>,
    state: Mutex<EngineState>,
    options: TierOptions,
    reader: Arc<SegmentReader>,
    cold: Arc<SegmentStore>,
    /// Keys with a migration in flight: a demotion and a promotion of the
    /// same key are serialised, so an interleaving can never delete both
    /// copies of a segment.
    migrating: KeyLocks,
}

/// A wait-on-contention lock set over segment keys.
#[derive(Default)]
struct KeyLocks {
    held: Mutex<std::collections::HashSet<SegmentKey>>,
    released: Condvar,
}

impl KeyLocks {
    fn lock(&self, key: &SegmentKey) -> KeyGuard<'_> {
        let mut held = lock_unpoisoned(&self.held);
        while held.contains(key) {
            held = wait_unpoisoned(&self.released, held);
        }
        held.insert(key.clone());
        KeyGuard {
            locks: self,
            key: key.clone(),
        }
    }
}

struct KeyGuard<'a> {
    locks: &'a KeyLocks,
    key: SegmentKey,
}

impl Drop for KeyGuard<'_> {
    fn drop(&mut self) {
        lock_unpoisoned(&self.locks.held).remove(&self.key);
        self.locks.released.notify_all();
    }
}

/// The tiering engine. Constructed by [`TierEngine::start`]; dropping the
/// engine drains the queue and joins the migration workers.
pub struct TierEngine {
    shared: Arc<EngineShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for TierEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierEngine")
            .field("cold", &self.shared.cold.dir())
            .field("workers", &self.shared.options.demote_workers)
            .field("queue_depth", &self.shared.queue.len())
            .finish()
    }
}

impl TierEngine {
    /// Start a tiering engine demoting from `reader`'s store into `cold`,
    /// with `options.demote_workers` background migration workers. The
    /// engine must then be attached to the reader
    /// ([`SegmentReader::attach_tier`]) for read-through promotion.
    pub fn start(
        reader: Arc<SegmentReader>,
        cold: Arc<SegmentStore>,
        options: TierOptions,
    ) -> Result<Arc<TierEngine>> {
        options.validate()?;
        if Arc::ptr_eq(reader.store(), &cold) {
            return Err(VStoreError::invalid_argument(
                "tier cold store must be distinct from the hot store",
            ));
        }
        let shared = Arc::new(EngineShared {
            queue: BoundedQueue::new(options.demote_queue_depth),
            state: Mutex::new(EngineState {
                demotions: 0,
                demoted_bytes: 0,
                promotions: 0,
                promoted_bytes: 0,
                cold_hits: 0,
                cold_misses: 0,
                failed_demotions: 0,
                cold_hit_latency: LatencyHistogram::default(),
            }),
            options,
            reader,
            cold,
            migrating: KeyLocks::default(),
        });
        let mut workers = Vec::with_capacity(options.demote_workers);
        for i in 0..options.demote_workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("vstore-tier-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    shared.queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(VStoreError::Io(e));
                }
            }
        }
        Ok(Arc::new(TierEngine {
            shared,
            workers: Mutex::new(workers),
        }))
    }

    /// The cold segment store.
    pub fn cold_store(&self) -> &Arc<SegmentStore> {
        &self.shared.cold
    }

    /// The hot store this engine demotes from.
    pub fn hot_store(&self) -> &Arc<SegmentStore> {
        self.shared.reader.store()
    }

    /// The engine's options.
    pub fn options(&self) -> &TierOptions {
        &self.shared.options
    }

    /// Demote a batch of segments: enqueue one migration job per key onto
    /// the bounded queue (blocking while it is full — back-pressure, never
    /// unbounded memory) and wait until the background workers have drained
    /// them all. Golden-format keys are refused: the golden format never
    /// leaves the hot tier.
    pub fn demote_batch(&self, keys: Vec<SegmentKey>) -> Result<DemoteBatchReport> {
        for key in &keys {
            if key.format.is_golden() {
                return Err(VStoreError::invalid_argument(format!(
                    "refusing to demote golden-format segment {key}"
                )));
            }
        }
        if keys.is_empty() {
            return Ok(DemoteBatchReport::default());
        }
        let total = keys.len();
        let batch = Arc::new(BatchState {
            progress: Mutex::new(BatchProgress {
                remaining: keys.len(),
                ..BatchProgress::default()
            }),
            done: Condvar::new(),
        });
        for key in keys {
            let job = DemoteJob {
                key,
                batch: Arc::clone(&batch),
            };
            // Block while the queue is full: the migration backlog can never
            // grow without bound. Any close (before or during the wait)
            // refuses the rest of the batch.
            if self.shared.queue.push(job, QueueFullPolicy::Block).is_err() {
                return Err(VStoreError::InvalidState(
                    "tier engine shut down while awaiting a queue slot".into(),
                ));
            }
        }
        let mut progress = lock_unpoisoned(&batch.progress);
        while progress.remaining > 0 {
            progress = wait_unpoisoned(&batch.done, progress);
        }
        if let Some(e) = progress.first_error.take() {
            // A failed migration leaves its segment hot (nothing was
            // deleted), so the batch error carries the partial progress and
            // re-eroding retries exactly the segments that failed.
            let failed = total - progress.segments - progress.skipped;
            return Err(VStoreError::InvalidState(format!(
                "{failed} of {total} demotions failed (first error: {e}); \
                 {} segments ({} bytes) were demoted before the failures, \
                 failed segments remain hot — re-erode to retry",
                progress.segments, progress.bytes
            )));
        }
        Ok(DemoteBatchReport {
            segments: progress.segments,
            bytes: progress.bytes,
            skipped: progress.skipped,
        })
    }

    /// Look a hot-missed key up in the cold tier; on a hit, return the
    /// bytes and — when [`TierOptions::promotion`] is on — promote them back
    /// to the hot store through `reader` (hot put before cold delete, cache
    /// tiers epoch-invalidated by the put).
    ///
    /// Called by [`SegmentReader`] on the read path; callers outside the
    /// reader should read through the reader instead.
    pub(crate) fn read_through(
        &self,
        key: &SegmentKey,
        reader: &SegmentReader,
    ) -> Result<Option<Vec<u8>>> {
        let started = Instant::now();
        // Serialised against any in-flight demotion of the same key; the
        // guard spans the cold read and the promotion move.
        let guard = self.shared.migrating.lock(key);
        let bytes = match self.shared.cold.get(key)? {
            Some(bytes) => bytes,
            None => {
                // A racing promotion may have moved the key hot between the
                // caller's hot miss and this lock acquisition: re-probe the
                // hot store under the key lock, so a concurrent reader can
                // never report an existing segment as missing.
                let rescued = self.shared.reader.store().get(key)?;
                drop(guard);
                if rescued.is_none() {
                    lock_unpoisoned(&self.shared.state).cold_misses += 1;
                }
                return Ok(rescued);
            }
        };
        let promoted = if self.shared.options.promotion {
            reader.put(key, &bytes)?;
            self.shared.cold.delete(key)?;
            true
        } else {
            false
        };
        drop(guard);
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut state = lock_unpoisoned(&self.shared.state);
        state.cold_hits += 1;
        state.cold_hit_latency.record(elapsed_us);
        if promoted {
            state.promotions += 1;
            state.promoted_bytes = state.promoted_bytes.saturating_add(bytes.len() as u64);
        }
        Ok(Some(bytes))
    }

    /// A statistics snapshot (resident bytes are read live from both
    /// stores).
    #[must_use]
    pub fn stats(&self) -> TierStats {
        let hot = self.shared.reader.store().stats();
        let cold = self.shared.cold.stats();
        let state = lock_unpoisoned(&self.shared.state);
        TierStats {
            hot_resident_bytes: hot.live_bytes,
            cold_resident_bytes: cold.live_bytes,
            cold_segments: cold.live_segments,
            demotions: state.demotions,
            demoted_bytes: state.demoted_bytes,
            promotions: state.promotions,
            promoted_bytes: state.promoted_bytes,
            cold_hits: state.cold_hits,
            cold_misses: state.cold_misses,
            failed_demotions: state.failed_demotions,
            queue_depth: self.shared.queue.len(),
            peak_queue_depth: self.shared.queue.peak_depth(),
            cold_hit_latency: state.cold_hit_latency.clone(),
        }
    }
}

impl Drop for TierEngine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for worker in lock_unpoisoned(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

/// Move one segment hot → cold. Returns the bytes moved, or `None` when the
/// hot store no longer holds the key (raced; nothing to do).
fn demote_one(shared: &EngineShared, key: &SegmentKey) -> Result<Option<u64>> {
    // Serialised against any in-flight promotion of the same key.
    let _guard = shared.migrating.lock(key);
    let bytes = match shared.reader.store().get(key)? {
        Some(bytes) => bytes,
        None => return Ok(None),
    };
    // Cold copy first — made durable (the cold backend's manifest is
    // persisted by sync) — and only then the hot delete: there is no
    // instant, across crashes included, without a full copy of the
    // segment.
    shared.cold.put(key, &bytes)?;
    shared.cold.sync()?;
    shared.reader.delete(key)?;
    Ok(Some(bytes.len() as u64))
}

/// The migration loop of one worker thread.
fn worker_loop(shared: &EngineShared) {
    let budget = shared.options.demote_budget_bytes_per_sec;
    loop {
        // `pop` blocks while the queue is open and returns `None` only once
        // it is closed and drained: the graceful exit.
        let Some(job) = shared.queue.pop() else {
            return;
        };

        // Panic isolation: a panicking migration fails one segment, not the
        // engine — the worker survives to drain the rest of the queue.
        let outcome = match catch_panic(|| demote_one(shared, &job.key)) {
            Ok(result) => result,
            Err(payload) => Err(VStoreError::InvalidState(format!(
                "tier migration worker panicked: {}",
                panic_message(&payload)
            ))),
        };
        let mut moved_bytes = None;
        {
            let mut state = lock_unpoisoned(&shared.state);
            match &outcome {
                Ok(Some(bytes)) => {
                    state.demotions += 1;
                    state.demoted_bytes = state.demoted_bytes.saturating_add(*bytes);
                    moved_bytes = Some(*bytes);
                }
                Ok(None) => {}
                Err(_) => state.failed_demotions += 1,
            }
        }
        {
            let mut progress = lock_unpoisoned(&job.batch.progress);
            match outcome {
                Ok(Some(bytes)) => {
                    progress.segments += 1;
                    progress.bytes = progress.bytes.saturating_add(bytes);
                }
                Ok(None) => progress.skipped += 1,
                Err(e) => {
                    if progress.first_error.is_none() {
                        progress.first_error = Some(e);
                    }
                }
            }
            progress.remaining -= 1;
            if progress.remaining == 0 {
                job.batch.done.notify_all();
            }
        }
        // Pace to the byte/s budget (0 = unthrottled): a worker that just
        // moved N bytes owes N / budget seconds before its next job. The
        // debt is slept in short slices so engine shutdown never waits out
        // a large segment's whole debt.
        if budget > 0 {
            if let Some(bytes) = moved_bytes {
                let mut owed = bytes as f64 / budget as f64;
                while owed > 0.0 {
                    if !shared.queue.is_open() {
                        break;
                    }
                    let slice = owed.min(0.1);
                    std::thread::sleep(Duration::from_secs_f64(slice));
                    owed -= slice;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::tier::cold::ColdBackend;
    use vstore_types::FormatId;

    fn key(format: u32, index: u64) -> SegmentKey {
        SegmentKey::new("tier", FormatId(format), index)
    }

    fn fixture(options: TierOptions) -> (Arc<SegmentReader>, Arc<TierEngine>) {
        let hot = Arc::new(SegmentStore::open_mem_with_shards(4).unwrap());
        let reader = Arc::new(SegmentReader::new(hot, 1 << 20, 16));
        let cold_backend: Arc<dyn crate::backend::StorageBackend> =
            Arc::new(ColdBackend::new(Arc::new(MemBackend::new())).unwrap());
        let cold = Arc::new(SegmentStore::open_with_backend(cold_backend, 1).unwrap());
        let engine = TierEngine::start(Arc::clone(&reader), cold, options).unwrap();
        reader.attach_tier(&engine);
        (reader, engine)
    }

    #[test]
    fn demote_batch_moves_segments_and_reads_promote_them_back() {
        let (reader, engine) = fixture(TierOptions::cold_mem());
        for i in 0..6 {
            reader.put(&key(1, i), &vec![i as u8; 500]).unwrap();
        }
        // Warm the cache so demotion must invalidate it.
        for i in 0..6 {
            reader.get(&key(1, i)).unwrap().unwrap();
        }
        let report = engine
            .demote_batch((0..4).map(|i| key(1, i)).collect())
            .unwrap();
        assert_eq!(report.segments, 4);
        assert_eq!(report.bytes, 4 * 500);
        assert_eq!(report.skipped, 0);
        assert_eq!(engine.cold_store().len(), 4);
        assert!(!reader.store().contains(&key(1, 0)));

        // Hot read of a demoted key: cold hit, promoted, byte-identical —
        // never a stale cache entry.
        let (bytes, source) = reader.get(&key(1, 2)).unwrap().unwrap();
        assert_eq!(*bytes, vec![2u8; 500]);
        assert_eq!(source, crate::reader::ReadSource::Cold);
        assert!(reader.store().contains(&key(1, 2)), "promoted back hot");
        assert!(!engine.cold_store().contains(&key(1, 2)));
        let (bytes, source) = reader.get(&key(1, 2)).unwrap().unwrap();
        assert_eq!(*bytes, vec![2u8; 500]);
        assert_ne!(
            source,
            crate::reader::ReadSource::Cold,
            "second read is hot"
        );

        let stats = engine.stats();
        assert_eq!(stats.demotions, 4);
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.cold_hits, 1);
        assert!(!stats.is_idle());
        assert_eq!(stats.cold_hit_rate(), 1.0);
        assert_eq!(stats.cold_hit_latency.count(), 1);
        assert!(stats.to_string().contains("4 demotions"));
    }

    #[test]
    fn promotion_off_serves_cold_without_moving() {
        let (reader, engine) = fixture(TierOptions::cold_mem().with_promotion(false));
        reader.put(&key(1, 0), b"stay-cold").unwrap();
        engine.demote_batch(vec![key(1, 0)]).unwrap();
        for _ in 0..2 {
            let (bytes, source) = reader.get(&key(1, 0)).unwrap().unwrap();
            assert_eq!(&*bytes, b"stay-cold");
            assert_eq!(source, crate::reader::ReadSource::Cold);
        }
        assert!(!reader.store().contains(&key(1, 0)));
        let stats = engine.stats();
        assert_eq!(stats.promotions, 0);
        assert_eq!(stats.cold_hits, 2);
    }

    #[test]
    fn golden_keys_are_refused_and_missing_keys_are_skipped() {
        let (reader, engine) = fixture(TierOptions::cold_mem());
        let err = engine
            .demote_batch(vec![SegmentKey::new("tier", FormatId::GOLDEN, 0)])
            .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
        reader.put(&key(1, 0), b"present").unwrap();
        let report = engine.demote_batch(vec![key(1, 0), key(1, 99)]).unwrap();
        assert_eq!(report.segments, 1);
        assert_eq!(report.skipped, 1);
    }

    /// Regression: a demotion must be durable on the cold device before
    /// the hot copy is deleted — a process that dies right after an erode
    /// must find every demoted segment in the persisted cold manifest.
    #[test]
    fn demotion_is_durable_on_the_cold_device_before_the_hot_delete() {
        let hot = Arc::new(SegmentStore::open_mem_with_shards(2).unwrap());
        let reader = Arc::new(SegmentReader::new(hot, 0, 0));
        let device: Arc<dyn crate::backend::StorageBackend> = Arc::new(MemBackend::new());
        let cold = Arc::new(
            SegmentStore::open_with_backend(
                Arc::new(ColdBackend::new(Arc::clone(&device)).unwrap()),
                1,
            )
            .unwrap(),
        );
        let engine = TierEngine::start(Arc::clone(&reader), cold, TierOptions::cold_mem()).unwrap();
        reader.attach_tier(&engine);
        reader.put(&key(1, 0), b"must-survive").unwrap();
        engine.demote_batch(vec![key(1, 0)]).unwrap();
        assert!(!reader.store().contains(&key(1, 0)));
        // Simulate a crash: reopen a fresh ColdBackend over the same device
        // with no sync in between. The persisted manifest must already
        // reference the demoted segment.
        let reopened = SegmentStore::open_with_backend(
            Arc::new(ColdBackend::new(device).unwrap()) as Arc<dyn crate::backend::StorageBackend>,
            1,
        )
        .unwrap();
        assert_eq!(
            reopened.get(&key(1, 0)).unwrap().unwrap(),
            b"must-survive",
            "demoted segment lost across a crash"
        );
    }

    #[test]
    fn tiny_queue_applies_back_pressure_but_completes() {
        let options = TierOptions::cold_mem().with_demote_queue(1, 1);
        let (reader, engine) = fixture(options);
        for i in 0..32 {
            reader.put(&key(1, i), &[7u8; 64]).unwrap();
        }
        let report = engine
            .demote_batch((0..32).map(|i| key(1, i)).collect())
            .unwrap();
        assert_eq!(report.segments, 32);
        let stats = engine.stats();
        assert!(stats.peak_queue_depth <= 1, "bounded queue overflowed");
        assert_eq!(stats.queue_depth, 0, "drained");
    }

    #[test]
    fn concurrent_queries_during_demotion_always_see_every_segment() {
        let (reader, engine) = fixture(TierOptions::cold_mem());
        let n = 48u64;
        for i in 0..n {
            reader.put(&key(1, i), &vec![(i % 251) as u8; 256]).unwrap();
        }
        std::thread::scope(|scope| {
            let r = Arc::clone(&reader);
            scope.spawn(move || {
                for round in 0..200u64 {
                    let i = round % n;
                    let (bytes, _) = r.get(&key(1, i)).unwrap().expect("segment vanished");
                    assert_eq!(*bytes, vec![(i % 251) as u8; 256], "torn or stale read");
                }
            });
            let report = engine
                .demote_batch((0..n).map(|i| key(1, i)).collect())
                .unwrap();
            // Concurrent promotions may race segments back hot before their
            // demote job runs; every segment is either moved or skipped.
            assert_eq!(report.segments + report.skipped, n as usize);
        });
        for i in 0..n {
            let (bytes, _) = reader.get(&key(1, i)).unwrap().unwrap();
            assert_eq!(*bytes, vec![(i % 251) as u8; 256]);
        }
    }
}
