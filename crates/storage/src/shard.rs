//! One storage shard: a single-lock, log-structured key-value store.
//!
//! A shard is exactly the original `SegmentStore` design — an in-memory
//! index over CRC-guarded value logs with tombstone deletes and rewrite
//! compaction — owning its own log namespace, log-file set, roll-over and
//! statistics. [`SegmentStore`](crate::store::SegmentStore) composes N of
//! these behind a key-hash router so operations on different shards never
//! contend on a lock. All I/O flows through the store's
//! [`StorageBackend`](crate::backend::StorageBackend); a shard never touches
//! the filesystem directly.

use crate::backend::StorageBackend;
use crate::key::SegmentKey;
use crate::log::LogFile;
use crate::store::StoreStats;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use vstore_types::{FormatId, Result, VStoreError};

/// Target maximum size of one value log file before the shard rolls over to
/// a new one (64 MiB keeps compaction granular without creating thousands of
/// files).
const LOG_ROLL_BYTES: u64 = 64 * 1024 * 1024;

/// Where a live value lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ValueLocation {
    file_id: u64,
    offset: u64,
    total_len: u64,
    value_len: u64,
}

#[derive(Debug)]
struct ShardInner {
    backend: Arc<dyn StorageBackend>,
    /// Log-namespace prefix of this shard (e.g. `shard-003`).
    dir: String,
    index: BTreeMap<SegmentKey, ValueLocation>,
    active: LogFile,
    /// Sealed logs by id, mapped to their backend names.
    sealed: BTreeMap<u64, String>,
    stats_writes: u64,
    stats_reads: u64,
    disk_bytes: u64,
}

/// One independently locked shard of the segment store.
#[derive(Debug)]
pub(crate) struct Shard {
    inner: Mutex<ShardInner>,
}

impl Shard {
    /// Open (or create) a shard under the backend namespace `dir`,
    /// rebuilding the index by scanning the value logs.
    pub(crate) fn open(backend: Arc<dyn StorageBackend>, dir: String) -> Result<Shard> {
        // Discover existing log files in id order.
        let mut ids: Vec<u64> = backend
            .list(&dir)?
            .iter()
            .filter_map(|name| LogFile::parse_id(name))
            .collect();
        ids.sort_unstable();

        let mut index = BTreeMap::new();
        let mut sealed = BTreeMap::new();
        let mut disk_bytes = 0u64;
        for &id in &ids {
            let name = LogFile::log_name(&dir, id);
            let records = LogFile::scan(backend.as_ref(), &name)?;
            for record in records {
                let key = SegmentKey::decode(&record.key)?;
                if record.is_tombstone {
                    index.remove(&key);
                } else {
                    index.insert(
                        key,
                        ValueLocation {
                            file_id: id,
                            offset: record.offset,
                            total_len: record.total_len,
                            value_len: record.value.len() as u64,
                        },
                    );
                }
            }
            disk_bytes += backend.len(&name)?.unwrap_or(0);
            sealed.insert(id, name);
        }
        // The active log is a fresh file after the highest existing id; this
        // keeps recovery simple (sealed files are never appended to again).
        let next_id = ids.last().map(|id| id + 1).unwrap_or(1);
        let active = LogFile::create(Arc::clone(&backend), &dir, next_id)?;
        Ok(Shard {
            inner: Mutex::new(ShardInner {
                backend,
                dir,
                index,
                active,
                sealed,
                stats_writes: 0,
                stats_reads: 0,
                disk_bytes,
            }),
        })
    }

    /// Store a segment, replacing any previous value under the same key.
    pub(crate) fn put(&self, key: &SegmentKey, value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.roll_if_needed()?;
        let encoded_key = key.encode();
        let (offset, total_len) = inner.active.append(&encoded_key, value, false)?;
        let file_id = inner.active.id;
        inner.index.insert(
            key.clone(),
            ValueLocation {
                file_id,
                offset,
                total_len,
                value_len: value.len() as u64,
            },
        );
        inner.stats_writes += 1;
        inner.disk_bytes += total_len;
        Ok(())
    }

    /// Fetch a segment. Returns `Ok(None)` when the key does not exist.
    pub(crate) fn get(&self, key: &SegmentKey) -> Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.stats_reads += 1;
        let location = match inner.index.get(key) {
            Some(loc) => *loc,
            None => return Ok(None),
        };
        let value = inner.read_at(location)?;
        Ok(Some(value))
    }

    /// `true` if the key exists.
    pub(crate) fn contains(&self, key: &SegmentKey) -> bool {
        self.inner.lock().index.contains_key(key)
    }

    /// Length in bytes of the key's live value, without reading it.
    pub(crate) fn value_len(&self, key: &SegmentKey) -> Option<u64> {
        self.inner.lock().index.get(key).map(|loc| loc.value_len)
    }

    /// Delete a segment. Deleting a missing key is a no-op.
    pub(crate) fn delete(&self, key: &SegmentKey) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.index.remove(key).is_none() {
            return Ok(());
        }
        inner.roll_if_needed()?;
        let encoded_key = key.encode();
        let (_, total_len) = inner.active.append(&encoded_key, &[], true)?;
        inner.stats_writes += 1;
        inner.disk_bytes += total_len;
        Ok(())
    }

    /// This shard's keys for one `(stream, format)` pair, in segment order.
    pub(crate) fn segments_of(&self, stream: &str, format: FormatId) -> Vec<SegmentKey> {
        let lo = SegmentKey::new(stream, format, 0);
        let hi = SegmentKey::new(stream, format, u64::MAX);
        self.inner
            .lock()
            .index
            .range(lo..=hi)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// This shard's live keys, in key order.
    pub(crate) fn keys(&self) -> Vec<SegmentKey> {
        self.inner.lock().index.keys().cloned().collect()
    }

    /// Number of live segments in this shard.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// Total bytes of live values stored in this shard for one
    /// `(stream, format)` pair.
    pub(crate) fn bytes_of(&self, stream: &str, format: FormatId) -> u64 {
        let lo = SegmentKey::new(stream, format, 0);
        let hi = SegmentKey::new(stream, format, u64::MAX);
        self.inner
            .lock()
            .index
            .range(lo..=hi)
            .map(|(_, v)| v.value_len)
            .sum()
    }

    /// This shard's statistics.
    pub(crate) fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            live_segments: inner.index.len(),
            live_bytes: inner.index.values().map(|v| v.value_len).sum(),
            disk_bytes: inner.disk_bytes,
            log_files: inner.sealed.len() + 1,
            writes: inner.stats_writes,
            reads: inner.stats_reads,
        }
    }

    /// Flush and fsync the active log.
    pub(crate) fn sync(&self) -> Result<()> {
        self.inner.lock().active.sync()
    }

    /// Rewrite all live records into fresh log files and delete the old
    /// ones, reclaiming space left by deletions and overwrites. Returns the
    /// number of bytes reclaimed.
    pub(crate) fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        let before = inner.disk_bytes;
        // Collect live key/value pairs (reading through the old files).
        let entries: Vec<(SegmentKey, ValueLocation)> =
            inner.index.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mut values = Vec::with_capacity(entries.len());
        for (key, loc) in &entries {
            values.push((key.clone(), inner.read_at(*loc)?));
        }
        // Remember the old logs, then start a new generation.
        let old_logs: Vec<String> = inner
            .sealed
            .values()
            .cloned()
            .chain(std::iter::once(inner.active.name().to_owned()))
            .collect();
        let next_id = inner.active.id + 1;
        inner.sealed.clear();
        inner.active = LogFile::create(Arc::clone(&inner.backend), &inner.dir, next_id)?;
        inner.index.clear();
        inner.disk_bytes = 0;
        for (key, value) in values {
            inner.roll_if_needed()?;
            let encoded = key.encode();
            let (offset, total_len) = inner.active.append(&encoded, &value, false)?;
            let file_id = inner.active.id;
            inner.index.insert(
                key,
                ValueLocation {
                    file_id,
                    offset,
                    total_len,
                    value_len: value.len() as u64,
                },
            );
            inner.disk_bytes += total_len;
        }
        inner.active.sync()?;
        for name in old_logs {
            inner.backend.remove(&name).ok();
        }
        Ok(before.saturating_sub(inner.disk_bytes))
    }
}

impl ShardInner {
    fn roll_if_needed(&mut self) -> Result<()> {
        if self.active.len() >= LOG_ROLL_BYTES {
            self.active.sync()?;
            let old_id = self.active.id;
            let old_name = self.active.name().to_owned();
            self.sealed.insert(old_id, old_name);
            self.active = LogFile::create(Arc::clone(&self.backend), &self.dir, old_id + 1)?;
        }
        Ok(())
    }

    fn read_at(&self, location: ValueLocation) -> Result<Vec<u8>> {
        // CRC-verified random access, for the active and sealed logs alike.
        if location.file_id == self.active.id {
            return self.active.read_value(location.offset, location.total_len);
        }
        let name = self.sealed.get(&location.file_id).ok_or_else(|| {
            VStoreError::corruption(format!("missing log file {}", location.file_id))
        })?;
        LogFile::read_value_in(
            self.backend.as_ref(),
            name,
            location.offset,
            location.total_len,
        )
    }
}
