//! Segment keys: `(stream, storage format, segment index)`.

use serde::{Deserialize, Serialize};
use std::fmt;
use vstore_types::{cast, FormatId, Result, VStoreError};

/// The key of one stored segment.
///
/// Keys order by `(stream, format, segment_index)`, so a range scan over one
/// `(stream, format)` pair returns segments in time order — the access
/// pattern of query execution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentKey {
    /// The ingested stream this segment belongs to.
    pub stream: String,
    /// The storage format this segment is stored in.
    pub format: FormatId,
    /// The index of the 8-second segment within the stream (segment 0 covers
    /// seconds 0–8, segment 1 covers 8–16, …).
    pub segment_index: u64,
}

impl SegmentKey {
    /// Construct a key.
    pub fn new(stream: impl Into<String>, format: FormatId, segment_index: u64) -> Self {
        SegmentKey {
            stream: stream.into(),
            format,
            segment_index,
        }
    }

    /// Serialise the key for the value log.
    pub fn encode(&self) -> Vec<u8> {
        let stream_bytes = self.stream.as_bytes();
        let mut out = Vec::with_capacity(stream_bytes.len() + 16);
        // vstore-lint: allow(checked-cast) — stream names are far inside u32; decode re-checks
        out.extend_from_slice(&(stream_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(stream_bytes);
        out.extend_from_slice(&self.format.0.to_le_bytes());
        out.extend_from_slice(&self.segment_index.to_le_bytes());
        out
    }

    /// Deserialise a key previously produced by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<SegmentKey> {
        if bytes.len() < 4 {
            return Err(VStoreError::corruption("segment key too short"));
        }
        let stream_len_u32 = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        // Compare in u64: a near-u32::MAX length field would overflow the
        // expected-size sum on a 32-bit usize and mis-frame the key.
        let expected = 4 + u64::from(stream_len_u32) + 4 + 8;
        if bytes.len() as u64 != expected {
            return Err(VStoreError::corruption(format!(
                "segment key length {} does not match expected {}",
                bytes.len(),
                expected
            )));
        }
        let stream_len = cast::usize_from_u32(stream_len_u32);
        let stream = std::str::from_utf8(&bytes[4..4 + stream_len])
            .map_err(|_| VStoreError::corruption("segment key stream is not UTF-8"))?
            .to_owned();
        let mut format_bytes = [0u8; 4];
        format_bytes.copy_from_slice(&bytes[4 + stream_len..8 + stream_len]);
        let mut index_bytes = [0u8; 8];
        index_bytes.copy_from_slice(&bytes[8 + stream_len..16 + stream_len]);
        Ok(SegmentKey {
            stream,
            format: FormatId(u32::from_le_bytes(format_bytes)),
            segment_index: u64::from_le_bytes(index_bytes),
        })
    }
}

impl fmt::Display for SegmentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.stream, self.format, self.segment_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let key = SegmentKey::new("jackson", FormatId(3), 17);
        let bytes = key.encode();
        assert_eq!(SegmentKey::decode(&bytes).unwrap(), key);
        let golden = SegmentKey::new("dashcam", FormatId::GOLDEN, u64::MAX);
        assert_eq!(SegmentKey::decode(&golden.encode()).unwrap(), golden);
    }

    #[test]
    fn decode_rejects_corrupt_keys() {
        assert!(SegmentKey::decode(&[]).is_err());
        assert!(SegmentKey::decode(&[1, 2, 3]).is_err());
        let mut bytes = SegmentKey::new("x", FormatId(1), 2).encode();
        bytes.pop();
        assert!(SegmentKey::decode(&bytes).is_err());
        // Invalid UTF-8 stream name.
        let mut bad = SegmentKey::new("ab", FormatId(1), 2).encode();
        bad[4] = 0xFF;
        bad[5] = 0xFE;
        assert!(SegmentKey::decode(&bad).is_err());
    }

    #[test]
    fn ordering_groups_stream_then_format_then_time() {
        let mut keys = [
            SegmentKey::new("b", FormatId(0), 0),
            SegmentKey::new("a", FormatId(1), 5),
            SegmentKey::new("a", FormatId(0), 9),
            SegmentKey::new("a", FormatId(0), 2),
        ];
        keys.sort();
        assert_eq!(keys[0], SegmentKey::new("a", FormatId(0), 2));
        assert_eq!(keys[1], SegmentKey::new("a", FormatId(0), 9));
        assert_eq!(keys[2], SegmentKey::new("a", FormatId(1), 5));
        assert_eq!(keys[3], SegmentKey::new("b", FormatId(0), 0));
    }

    #[test]
    fn display_is_human_readable() {
        let key = SegmentKey::new("park", FormatId(2), 7);
        assert_eq!(key.to_string(), "park/SF2/7");
    }
}
