//! The storage backend abstraction: every byte the segment store reads or
//! writes flows through a [`StorageBackend`].
//!
//! The store's I/O needs are narrow — append-only named logs, CRC-verified
//! random reads, whole-file scans at recovery, small meta files, and listing
//! — so the trait stays small enough that a tiered or object-store backend
//! can implement it later without touching `Shard` or `LogFile`. Two
//! implementations ship today:
//!
//! * [`FsBackend`] — the local filesystem, byte-for-byte the pre-backend
//!   on-disk format (existing stores reopen cleanly);
//! * [`MemBackend`] — an in-memory map for tests and benchmarks, with the
//!   exact same observable behaviour (the backend parity tests enforce it).
//!
//! Log names are `/`-separated paths relative to the backend root, e.g.
//! `shard-003/vlog-00000001.dat` or `SHARDS`.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vstore_types::{Result, VStoreError};

/// An append handle to one named log, held open by the active log file of a
/// shard. Appends must become visible to [`StorageBackend::read_at`] and
/// [`StorageBackend::read_all`] immediately (the index points readers at
/// records the moment `put` returns).
pub trait LogHandle: Send + fmt::Debug {
    /// Append `data` at the end of the log.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Flush buffered appends to stable storage.
    fn sync(&mut self) -> Result<()>;
}

/// Backend-agnostic I/O over named logs.
///
/// Implementations must be internally synchronised: `Shard` serialises
/// writes per shard, but reads, listings and removals arrive concurrently
/// from many shards and query threads.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Open (or create) the named log for appending. `truncate` empties any
    /// existing log; otherwise appends go after the current contents.
    fn open(&self, name: &str, truncate: bool) -> Result<Box<dyn LogHandle>>;

    /// Read exactly `len` bytes at `offset` of the named log.
    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Read the whole named log; `Ok(None)` when it does not exist.
    fn read_all(&self, name: &str) -> Result<Option<Vec<u8>>>;

    /// Atomically replace the named log's contents (small meta files).
    fn write_all(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Remove the named log. Removing a missing log is a no-op.
    fn remove(&self, name: &str) -> Result<()>;

    /// Current length of the named log; `Ok(None)` when it does not exist.
    fn len(&self, name: &str) -> Result<Option<u64>>;

    /// Immediate child names under `dir` (`""` is the root): plain logs and
    /// directory-like prefixes alike, without any path separator. A missing
    /// directory lists as empty.
    fn list(&self, dir: &str) -> Result<Vec<String>>;

    /// Human-readable location of the backend (a path, or `<mem>`).
    fn describe(&self) -> String;
}

/// Which [`StorageBackend`] a store should run on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackendOptions {
    /// The local filesystem ([`FsBackend`]) — the default, and the only
    /// backend that persists across process restarts.
    #[default]
    Fs,
    /// An in-memory backend ([`MemBackend`]) for tests and benchmarks.
    Mem,
}

impl BackendOptions {
    /// Instantiate the chosen backend rooted at `root` (ignored by `Mem`).
    pub fn create(&self, root: &Path) -> Result<Arc<dyn StorageBackend>> {
        Ok(match self {
            BackendOptions::Fs => Arc::new(FsBackend::new(root)?),
            BackendOptions::Mem => Arc::new(MemBackend::new()),
        })
    }
}

// ---------------------------------------------------------------------------
// Filesystem backend
// ---------------------------------------------------------------------------

/// The local-filesystem backend: names resolve to paths under a root
/// directory. This reproduces the pre-backend on-disk format exactly.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    /// A backend rooted at `root`, creating the directory if needed.
    pub fn new(root: impl AsRef<Path>) -> Result<FsBackend> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(FsBackend { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, name: &str) -> Result<PathBuf> {
        if name.is_empty()
            || name
                .split('/')
                .any(|c| c.is_empty() || c == "." || c == "..")
        {
            return Err(VStoreError::invalid_argument(format!(
                "invalid log name {name:?}"
            )));
        }
        Ok(self.root.join(name))
    }

    fn resolve_parent(&self, name: &str) -> Result<PathBuf> {
        let path = self.resolve(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        Ok(path)
    }
}

#[derive(Debug)]
struct FsLogHandle {
    file: File,
}

impl LogHandle for FsLogHandle {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }
}

impl StorageBackend for FsBackend {
    fn open(&self, name: &str, truncate: bool) -> Result<Box<dyn LogHandle>> {
        let path = self.resolve_parent(name)?;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(truncate)
            .open(&path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(FsLogHandle { file }))
    }

    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut file = File::open(self.resolve(name)?)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; vstore_types::cast::usize_from_u64(len, "log read")?];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn read_all(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.resolve(name)?) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn write_all(&self, name: &str, data: &[u8]) -> Result<()> {
        // Write-then-rename so a crash mid-write can never leave a
        // truncated meta file (the trait promises atomic replacement, and
        // the SHARDS meta file gates every reopen).
        let path = self.resolve_parent(name)?;
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, data)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.resolve(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn len(&self, name: &str) -> Result<Option<u64>> {
        match fs::metadata(self.resolve(name)?) {
            Ok(meta) => Ok(Some(meta.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let path = if dir.is_empty() {
            self.root.clone()
        } else {
            self.resolve(dir)?
        };
        let entries = match fs::read_dir(&path) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .collect();
        names.sort_unstable();
        Ok(names)
    }

    fn describe(&self) -> String {
        self.root.display().to_string()
    }
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// One in-memory log: contents behind their own lock, so appends and reads
/// of different logs (different shards) never contend.
type MemLog = Arc<Mutex<Vec<u8>>>;

type MemFiles = Arc<Mutex<BTreeMap<String, MemLog>>>;

/// An in-memory backend: logs are entries of a shared map, each behind its
/// own lock (the map lock is held only to look names up, preserving the
/// sharded store's lock independence). `sync` is a no-op; nothing survives
/// the process.
#[derive(Debug, Default)]
pub struct MemBackend {
    files: MemFiles,
}

impl MemBackend {
    /// A fresh, empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// The named log's shared buffer, if it exists.
    fn log(&self, name: &str) -> Option<MemLog> {
        self.files.lock().get(name).cloned()
    }

    /// The named log's shared buffer, creating it if needed.
    fn log_or_default(&self, name: &str) -> MemLog {
        Arc::clone(self.files.lock().entry(name.to_owned()).or_default())
    }

    /// An I/O-shaped "not found" error, matching what [`FsBackend`] surfaces
    /// for the same condition so callers observe identical error behaviour.
    fn not_found(name: &str) -> VStoreError {
        VStoreError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("log {name} does not exist"),
        ))
    }
}

#[derive(Debug)]
struct MemLogHandle {
    log: MemLog,
}

impl LogHandle for MemLogHandle {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.log.lock().extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

impl StorageBackend for MemBackend {
    fn open(&self, name: &str, truncate: bool) -> Result<Box<dyn LogHandle>> {
        let log = self.log_or_default(name);
        if truncate {
            log.lock().clear();
        }
        Ok(Box::new(MemLogHandle { log }))
    }

    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let log = self.log(name).ok_or_else(|| Self::not_found(name))?;
        let data = log.lock();
        // Bounds arithmetic in u64, so a 32-bit host can never wrap
        // `offset as usize` into a bogus in-range slice.
        let in_range = offset
            .checked_add(len)
            .is_some_and(|end| end <= data.len() as u64);
        if !in_range {
            // The same error class FsBackend's read_exact surfaces for a
            // read past the end of a file.
            return Err(VStoreError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "read past end of log {name}: {offset}+{len} > {}",
                    data.len()
                ),
            )));
        }
        // In range within an in-memory buffer, so both fit a usize.
        let start = vstore_types::cast::usize_from_u64(offset, "log read offset")?;
        let end = vstore_types::cast::usize_from_u64(offset + len, "log read end")?;
        Ok(data[start..end].to_vec())
    }

    fn read_all(&self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.log(name).map(|log| log.lock().clone()))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> Result<()> {
        // Mutate the existing buffer in place so open handles to the same
        // log keep observing it.
        *self.log_or_default(name).lock() = data.to_vec();
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.files.lock().remove(name);
        Ok(())
    }

    fn len(&self, name: &str) -> Result<Option<u64>> {
        Ok(self.log(name).map(|log| log.lock().len() as u64))
    }

    fn list(&self, dir: &str) -> Result<Vec<String>> {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        let files = self.files.lock();
        let children: BTreeSet<String> = files
            .keys()
            .filter_map(|name| name.strip_prefix(&prefix))
            .map(|rest| match rest.split_once('/') {
                Some((first, _)) => first.to_owned(),
                None => rest.to_owned(),
            })
            .collect();
        Ok(children.into_iter().collect())
    }

    fn describe(&self) -> String {
        "<mem>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "vstore-backend-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ))
    }

    fn backends(tag: &str) -> Vec<(Arc<dyn StorageBackend>, Option<PathBuf>)> {
        let root = temp_root(tag);
        vec![
            (Arc::new(FsBackend::new(&root).unwrap()), Some(root)),
            (Arc::new(MemBackend::new()), None),
        ]
    }

    fn cleanup(root: Option<PathBuf>) {
        if let Some(root) = root {
            fs::remove_dir_all(root).ok();
        }
    }

    #[test]
    fn append_read_round_trip_on_both_backends() {
        for (backend, root) in backends("roundtrip") {
            let mut log = backend.open("shard-000/vlog-00000001.dat", true).unwrap();
            log.append(b"hello ").unwrap();
            log.append(b"world").unwrap();
            log.sync().unwrap();
            assert_eq!(
                backend.len("shard-000/vlog-00000001.dat").unwrap(),
                Some(11)
            );
            assert_eq!(
                backend
                    .read_at("shard-000/vlog-00000001.dat", 6, 5)
                    .unwrap(),
                b"world"
            );
            assert_eq!(
                backend
                    .read_all("shard-000/vlog-00000001.dat")
                    .unwrap()
                    .unwrap(),
                b"hello world"
            );
            cleanup(root);
        }
    }

    #[test]
    fn reopen_without_truncate_appends_after_existing_bytes() {
        for (backend, root) in backends("reopen") {
            {
                let mut log = backend.open("a.dat", true).unwrap();
                log.append(b"one").unwrap();
            }
            {
                let mut log = backend.open("a.dat", false).unwrap();
                log.append(b"two").unwrap();
            }
            assert_eq!(backend.read_all("a.dat").unwrap().unwrap(), b"onetwo");
            let mut log = backend.open("a.dat", true).unwrap();
            log.append(b"x").unwrap();
            drop(log);
            assert_eq!(backend.len("a.dat").unwrap(), Some(1));
            cleanup(root);
        }
    }

    #[test]
    fn missing_logs_read_as_none_and_remove_is_idempotent() {
        for (backend, root) in backends("missing") {
            assert_eq!(backend.read_all("nope.dat").unwrap(), None);
            assert_eq!(backend.len("nope.dat").unwrap(), None);
            backend.remove("nope.dat").unwrap();
            backend.write_all("meta", b"7\n").unwrap();
            assert_eq!(backend.read_all("meta").unwrap().unwrap(), b"7\n");
            backend.remove("meta").unwrap();
            assert_eq!(backend.read_all("meta").unwrap(), None);
            cleanup(root);
        }
    }

    #[test]
    fn list_returns_immediate_children_only() {
        for (backend, root) in backends("list") {
            backend.write_all("SHARDS", b"2\n").unwrap();
            backend
                .write_all("shard-000/vlog-00000001.dat", b"a")
                .unwrap();
            backend
                .write_all("shard-000/vlog-00000002.dat", b"b")
                .unwrap();
            backend
                .write_all("shard-001/vlog-00000001.dat", b"c")
                .unwrap();
            let mut top = backend.list("").unwrap();
            top.sort_unstable();
            assert_eq!(top, vec!["SHARDS", "shard-000", "shard-001"]);
            assert_eq!(
                backend.list("shard-000").unwrap(),
                vec!["vlog-00000001.dat", "vlog-00000002.dat"]
            );
            assert!(backend.list("shard-999").unwrap().is_empty());
            cleanup(root);
        }
    }

    #[test]
    fn fs_backend_rejects_escaping_names() {
        let root = temp_root("escape");
        let backend = FsBackend::new(&root).unwrap();
        assert!(backend.read_all("../outside").is_err());
        assert!(backend.write_all("a/../../b", b"x").is_err());
        assert!(backend.open("", true).is_err());
        fs::remove_dir_all(root).ok();
    }

    #[test]
    fn read_failures_surface_the_same_error_class_on_both_backends() {
        // Error parity matters to callers that branch on the error kind: a
        // missing or short log must look I/O-shaped on both backends.
        for (backend, root) in backends("read-errors") {
            backend.write_all("short", b"abc").unwrap();
            for err in [
                backend.read_at("short", 1, 10).unwrap_err(),
                backend.read_at("absent", 0, 1).unwrap_err(),
            ] {
                assert!(
                    matches!(err, VStoreError::Io(_)),
                    "expected an Io error, got {err:?}"
                );
            }
            cleanup(root);
        }
    }

    #[test]
    fn write_all_replaces_without_leaving_temp_debris() {
        for (backend, root) in backends("write-all") {
            backend.write_all("SHARDS", b"8\n").unwrap();
            backend.write_all("SHARDS", b"4\n").unwrap();
            assert_eq!(backend.read_all("SHARDS").unwrap().unwrap(), b"4\n");
            // The fs implementation writes via a temp file + rename; no
            // `.tmp` artefact may remain visible afterwards.
            assert!(backend
                .list("")
                .unwrap()
                .iter()
                .all(|n| !n.ends_with(".tmp")));
            cleanup(root);
        }
    }

    #[test]
    fn mem_write_all_keeps_open_handles_attached() {
        let backend = MemBackend::new();
        let mut log = backend.open("log", true).unwrap();
        log.append(b"abc").unwrap();
        backend.write_all("log", b"x").unwrap();
        log.append(b"yz").unwrap();
        assert_eq!(backend.read_all("log").unwrap().unwrap(), b"xyz");
    }
}
