//! The append-only value log: record framing, appending, scanning.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! ┌────────┬───────┬───────┬───────┬────────────┬──────────────┐
//! │ magic  │ flags │ klen  │ vlen  │ key bytes  │ value bytes  │ crc32
//! │ u32    │ u8    │ u32   │ u32   │ klen       │ vlen         │ u32
//! └────────┴───────┴───────┴───────┴────────────┴──────────────┘
//! ```
//!
//! The CRC covers flags, lengths, key and value. A record with `flags = 1`
//! is a tombstone (its value is empty). A torn tail (partial record after a
//! crash) is detected by the CRC or a truncated read and the scan stops at
//! the last complete record — earlier records stay readable.
//!
//! All I/O flows through a [`StorageBackend`]: a `LogFile` is a named log
//! plus an open append handle, and never touches the filesystem directly.

use crate::backend::{LogHandle, StorageBackend};
use std::sync::Arc;
use vstore_types::cast::{u32_from_usize, usize_from_u64};
use vstore_types::{Result, VStoreError};

/// Magic number at the start of every record.
const RECORD_MAGIC: u32 = 0x5653_4C47; // "VSLG"

/// Record flag: this record deletes the key.
pub const FLAG_TOMBSTONE: u8 = 1;

/// A parsed record returned by the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Byte offset of the record header within the file.
    pub offset: u64,
    /// Total on-disk length of the record, including framing.
    pub total_len: u64,
    /// Encoded key bytes.
    pub key: Vec<u8>,
    /// Value bytes (empty for tombstones).
    pub value: Vec<u8>,
    /// `true` when the record is a tombstone.
    pub is_tombstone: bool,
}

/// Compute the CRC-32 (IEEE) of the record body. `klen`/`vlen` are the
/// lengths exactly as framed on disk — callers validate that the slices
/// really are that long, so the CRC can never cover silently truncated
/// length fields.
fn record_crc(flags: u8, klen: u32, vlen: u32, key: &[u8], value: &[u8]) -> u32 {
    // Reuse the same polynomial as the codec's wire module, implemented
    // locally to avoid a dependency edge from storage to codec.
    let mut crc = 0xFFFF_FFFFu32;
    let mut feed = |data: &[u8]| {
        for &byte in data {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    };
    feed(&[flags]);
    feed(&klen.to_le_bytes());
    feed(&vlen.to_le_bytes());
    feed(key);
    feed(value);
    !crc
}

/// On-disk size of a record with the given key/value lengths.
pub fn record_size(key_len: usize, value_len: usize) -> u64 {
    4 + 1 + 4 + 4 + key_len as u64 + value_len as u64 + 4
}

/// An append-only log file over a [`StorageBackend`].
#[derive(Debug)]
pub struct LogFile {
    backend: Arc<dyn StorageBackend>,
    name: String,
    handle: Box<dyn LogHandle>,
    len: u64,
    /// Numeric id used to order log files.
    pub id: u64,
}

impl LogFile {
    /// File name for a log id.
    pub fn file_name(id: u64) -> String {
        format!("vlog-{id:08}.dat")
    }

    /// Parse a log id from a file name, if it is a value log.
    pub fn parse_id(name: &str) -> Option<u64> {
        let rest = name.strip_prefix("vlog-")?.strip_suffix(".dat")?;
        rest.parse().ok()
    }

    /// Backend name of a log: `dir/vlog-<id>.dat` (`dir` may be empty).
    pub fn log_name(dir: &str, id: u64) -> String {
        if dir.is_empty() {
            Self::file_name(id)
        } else {
            format!("{dir}/{}", Self::file_name(id))
        }
    }

    /// Create a new, empty log (truncating any existing log of that name).
    pub fn create(backend: Arc<dyn StorageBackend>, dir: &str, id: u64) -> Result<LogFile> {
        let name = Self::log_name(dir, id);
        let handle = backend.open(&name, true)?;
        Ok(LogFile {
            backend,
            name,
            handle,
            len: 0,
            id,
        })
    }

    /// Open an existing log for appending.
    pub fn open(backend: Arc<dyn StorageBackend>, dir: &str, id: u64) -> Result<LogFile> {
        let name = Self::log_name(dir, id);
        let handle = backend.open(&name, false)?;
        let len = backend.len(&name)?.unwrap_or(0);
        Ok(LogFile {
            backend,
            name,
            handle,
            len,
            id,
        })
    }

    /// The backend name of this log.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no record has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a record; returns its offset and total length.
    ///
    /// Keys and values longer than `u32::MAX` bytes are rejected with
    /// [`VStoreError::InvalidArgument`]: the record frame stores both
    /// lengths as `u32`, and writing a truncated length would corrupt every
    /// record that follows.
    pub fn append(&mut self, key: &[u8], value: &[u8], is_tombstone: bool) -> Result<(u64, u64)> {
        let flags = if is_tombstone { FLAG_TOMBSTONE } else { 0 };
        let klen = u32_from_usize(key.len(), "log record key")?;
        let vlen = u32_from_usize(value.len(), "log record value")?;
        let crc = record_crc(flags, klen, vlen, key, value);
        let mut buf = Vec::with_capacity(usize_from_u64(
            record_size(key.len(), value.len()),
            "log record",
        )?);
        buf.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        buf.push(flags);
        buf.extend_from_slice(&klen.to_le_bytes());
        buf.extend_from_slice(&vlen.to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        buf.extend_from_slice(&crc.to_le_bytes());
        let offset = self.len;
        self.handle.append(&buf)?;
        self.len += buf.len() as u64;
        Ok((offset, buf.len() as u64))
    }

    /// Flush buffered writes to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.handle.sync()
    }

    /// Read the value of a record given its offset and total length, and
    /// verify its CRC.
    pub fn read_value(&self, offset: u64, total_len: u64) -> Result<Vec<u8>> {
        Self::read_value_in(self.backend.as_ref(), &self.name, offset, total_len)
    }

    /// [`read_value`](Self::read_value) against a log that is not open
    /// (random access into sealed logs).
    pub fn read_value_in(
        backend: &dyn StorageBackend,
        name: &str,
        offset: u64,
        total_len: u64,
    ) -> Result<Vec<u8>> {
        let buf = backend.read_at(name, offset, total_len)?;
        let record = parse_record(&buf, offset)?
            .ok_or_else(|| VStoreError::corruption("record truncated on read"))?;
        Ok(record.value)
    }

    /// Parse the complete records contained in an in-memory buffer whose
    /// first byte sits at `base_offset` within its file. Stops cleanly at a
    /// truncated or CRC-failing record.
    pub fn scan_buffer(buf: &[u8], base_offset: u64) -> Result<Vec<LogRecord>> {
        let mut records = Vec::new();
        let mut offset = 0usize;
        while offset < buf.len() {
            match parse_record(&buf[offset..], base_offset + offset as u64)? {
                Some(record) => {
                    // parse_record only returns records fully contained in
                    // the buffer, so the length always fits a usize.
                    let advance = usize_from_u64(record.total_len, "log record length")
                        .map_err(|e| VStoreError::corruption(e.to_string()))?;
                    records.push(record);
                    offset += advance;
                }
                None => break,
            }
        }
        Ok(records)
    }

    /// Scan all complete records of a named log. Stops cleanly at a torn
    /// tail; a missing log scans as empty.
    pub fn scan(backend: &dyn StorageBackend, name: &str) -> Result<Vec<LogRecord>> {
        let data = match backend.read_all(name)? {
            Some(data) => data,
            None => return Ok(Vec::new()),
        };
        Self::scan_buffer(&data, 0)
    }
}

/// Parse one record from the start of `buf`; `Ok(None)` means the buffer
/// ends in a truncated record (torn tail).
fn parse_record(buf: &[u8], offset: u64) -> Result<Option<LogRecord>> {
    const HEADER: usize = 4 + 1 + 4 + 4;
    if buf.len() < HEADER {
        return Ok(None);
    }
    let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if magic != RECORD_MAGIC {
        return Err(VStoreError::corruption(format!(
            "bad record magic {magic:#x} at offset {offset}"
        )));
    }
    let flags = buf[4];
    let klen = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]);
    let vlen = u32::from_le_bytes([buf[9], buf[10], buf[11], buf[12]]);
    // Size arithmetic stays in u64: near-u32::MAX lengths would overflow a
    // 32-bit usize here and index the buffer with a wrapped total.
    let total = HEADER as u64 + u64::from(klen) + u64::from(vlen) + 4;
    if (buf.len() as u64) < total {
        return Ok(None);
    }
    // The record is fully contained in `buf`, so all three lengths fit a
    // usize on this platform; the checked conversions are the proof.
    let to_len =
        |v: u64, what| usize_from_u64(v, what).map_err(|e| VStoreError::corruption(e.to_string()));
    let total = to_len(total, "log record length")?;
    let (klen_wire, vlen_wire) = (klen, vlen);
    let klen = to_len(u64::from(klen), "log record key length")?;
    let vlen = to_len(u64::from(vlen), "log record value length")?;
    let key = buf[HEADER..HEADER + klen].to_vec();
    let value = buf[HEADER + klen..HEADER + klen + vlen].to_vec();
    let stored_crc = u32::from_le_bytes([
        buf[total - 4],
        buf[total - 3],
        buf[total - 2],
        buf[total - 1],
    ]);
    if stored_crc != record_crc(flags, klen_wire, vlen_wire, &key, &value) {
        // A CRC mismatch on the last record is a torn write; report it as a
        // torn tail rather than corruption so recovery keeps earlier data.
        return Ok(None);
    }
    Ok(Some(LogRecord {
        offset,
        total_len: total as u64,
        key,
        value,
        is_tombstone: flags & FLAG_TOMBSTONE != 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FsBackend, MemBackend};
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vstore-log-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Every test runs against both backends; the on-log behaviour must be
    /// indistinguishable.
    fn backends(tag: &str) -> Vec<(Arc<dyn StorageBackend>, Option<PathBuf>)> {
        let dir = temp_dir(tag);
        vec![
            (Arc::new(FsBackend::new(&dir).unwrap()), Some(dir)),
            (Arc::new(MemBackend::new()), None),
        ]
    }

    fn cleanup(dir: Option<PathBuf>) {
        if let Some(dir) = dir {
            fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn append_and_scan_round_trip() {
        for (backend, dir) in backends("roundtrip") {
            let mut log = LogFile::create(Arc::clone(&backend), "", 1).unwrap();
            let (off1, len1) = log.append(b"key-a", b"value-a", false).unwrap();
            let (off2, _) = log.append(b"key-b", &vec![7u8; 10_000], false).unwrap();
            let (_, _) = log.append(b"key-a", b"", true).unwrap();
            log.sync().unwrap();
            assert_eq!(off2, off1 + len1);

            let records = LogFile::scan(backend.as_ref(), log.name()).unwrap();
            assert_eq!(records.len(), 3);
            assert_eq!(records[0].key, b"key-a");
            assert_eq!(records[0].value, b"value-a");
            assert!(!records[0].is_tombstone);
            assert_eq!(records[1].value.len(), 10_000);
            assert!(records[2].is_tombstone);

            // Random access read of the second value.
            let value = log
                .read_value(records[1].offset, records[1].total_len)
                .unwrap();
            assert_eq!(value, vec![7u8; 10_000]);
            cleanup(dir);
        }
    }

    #[test]
    fn torn_tail_is_ignored_but_earlier_records_survive() {
        for (backend, dir) in backends("torn") {
            let mut log = LogFile::create(Arc::clone(&backend), "", 1).unwrap();
            log.append(b"k1", b"v1", false).unwrap();
            let (off2, len2) = log.append(b"k2", b"v2", false).unwrap();
            log.sync().unwrap();
            let name = log.name().to_owned();
            drop(log);
            // Truncate the log mid-way through the second record.
            let data = backend.read_all(&name).unwrap().unwrap();
            backend
                .write_all(&name, &data[..(off2 + len2 / 2) as usize])
                .unwrap();
            let records = LogFile::scan(backend.as_ref(), &name).unwrap();
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].key, b"k1");
            cleanup(dir);
        }
    }

    #[test]
    fn corrupted_value_fails_crc_and_is_dropped() {
        for (backend, dir) in backends("crc") {
            let mut log = LogFile::create(Arc::clone(&backend), "", 1).unwrap();
            log.append(b"k1", b"v1", false).unwrap();
            let (off2, len2) = log.append(b"k2", b"AAAAAAAA", false).unwrap();
            log.sync().unwrap();
            let name = log.name().to_owned();
            drop(log);
            // Flip a byte inside the second record's value.
            let mut data = backend.read_all(&name).unwrap().unwrap();
            let value_pos = (off2 + len2 - 5) as usize;
            data[value_pos] ^= 0xFF;
            backend.write_all(&name, &data).unwrap();
            let records = LogFile::scan(backend.as_ref(), &name).unwrap();
            assert_eq!(records.len(), 1, "corrupt record should not be returned");
            cleanup(dir);
        }
    }

    #[test]
    fn scan_of_missing_log_is_empty() {
        for (backend, dir) in backends("missing") {
            let records = LogFile::scan(backend.as_ref(), "vlog-99999999.dat").unwrap();
            assert!(records.is_empty());
            cleanup(dir);
        }
    }

    #[test]
    fn bad_magic_is_reported_as_corruption() {
        for (backend, dir) in backends("magic") {
            let name = LogFile::file_name(1);
            backend.write_all(&name, &[0u8; 64]).unwrap();
            assert!(LogFile::scan(backend.as_ref(), &name).is_err());
            cleanup(dir);
        }
    }

    #[test]
    fn file_name_round_trip() {
        assert_eq!(LogFile::file_name(42), "vlog-00000042.dat");
        assert_eq!(LogFile::parse_id("vlog-00000042.dat"), Some(42));
        assert_eq!(LogFile::parse_id("manifest"), None);
        assert_eq!(LogFile::parse_id("vlog-xx.dat"), None);
        assert_eq!(
            LogFile::log_name("shard-003", 1),
            "shard-003/vlog-00000001.dat"
        );
        assert_eq!(LogFile::log_name("", 1), "vlog-00000001.dat");
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        for (backend, dir) in backends("reopen") {
            {
                let mut log = LogFile::create(Arc::clone(&backend), "", 3).unwrap();
                log.append(b"k1", b"v1", false).unwrap();
                log.sync().unwrap();
            }
            {
                let mut log = LogFile::open(Arc::clone(&backend), "", 3).unwrap();
                assert!(!log.is_empty());
                log.append(b"k2", b"v2", false).unwrap();
                log.sync().unwrap();
            }
            let records = LogFile::scan(backend.as_ref(), &LogFile::file_name(3)).unwrap();
            assert_eq!(records.len(), 2);
            cleanup(dir);
        }
    }
}
