//! # vstore-storage
//!
//! The embedded segment store backing VStore — the stand-in for the LMDB
//! key-value store the paper uses (§5).
//!
//! VStore's storage workload is simple but specific: MB-sized values
//! (8-second video segments), keyed by `(stream, storage format, segment
//! index)`, written append-only at ingestion, read back by range at query
//! time, and deleted in bulk by the erosion planner. The store is therefore
//! a log-structured key-value store in the Bitcask style:
//!
//! * values live in append-only **value log** files with CRC-guarded
//!   records;
//! * an **in-memory index** maps keys to (file, offset, length) and is
//!   rebuilt by scanning the logs at open (tombstones supersede puts);
//! * **deletes** append tombstones; **compaction** rewrites live records
//!   into fresh logs and drops the garbage.
//!
//! The store is **sharded**: keys are routed by a deterministic hash of the
//! full `(stream, format, segment index)` key to one of N independent shards
//! (each with its own lock, index, log-file set, roll-over and compaction),
//! so parallel ingestion writers and query readers scale with cores instead
//! of serialising on a single lock. Range scans merge across shards;
//! compaction runs shards in parallel. The shard count is recorded in a
//! `SHARDS` meta file at creation and honoured on reopen; a single-shard
//! store reproduces the original single-lock behaviour exactly.
//!
//! The store is **backend-pluggable**: every byte flows through the
//! [`StorageBackend`] trait (open/append/read-at/sync/remove/list over named
//! logs), never through `std::fs` directly. [`FsBackend`] is the default and
//! reproduces the original on-disk format byte for byte; [`MemBackend`]
//! keeps the same observable behaviour in memory for tests and benchmarks.
//! Tiered and object-store backends slot in behind the same trait.
//!
//! The **unified read path** sits above the store: a [`SegmentReader`]
//! fronts `SegmentStore::get` with a two-tier, shard-aware cache — a
//! per-shard raw-bytes LRU (tier 1) and a decoded-frames cache keyed by
//! `(segment key, sampling rate)` (tier 2) — so repeated cascade stages and
//! hot streams stop re-paying disk + CRC + decode. Writes routed through
//! the reader invalidate both tiers; with both tiers disabled the reader is
//! a byte-identical passthrough. See the [`reader`] module docs.
//!
//! **Tiered cold storage** sits below and beside the store: the [`tier`]
//! module packs aged segments into an object-store-style [`ColdBackend`]
//! (immutable chunked checksummed objects + manifest), composes hot and
//! cold backends behind [`TieredBackend`], and runs the [`TierEngine`] —
//! a bounded background migration queue that lets erosion **demote
//! segments instead of deleting them**, with read-through promotion on
//! cold hits flowing through the [`SegmentReader`] so both cache tiers
//! stay coherent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod key;
pub mod log;
pub mod reader;
mod shard;
pub mod store;
pub mod tier;

pub use backend::{BackendOptions, FsBackend, LogHandle, MemBackend, StorageBackend};
pub use key::SegmentKey;
pub use reader::{CacheStats, DecodedRead, DecodedSegment, ReadSource, SegmentReader};
pub use store::{SegmentStore, StoreStats};
pub use tier::{
    ColdBackend, DemoteBatchReport, TierEngine, TierOptions, TierStats, TieredBackend,
    TieredBackendStats, DEFAULT_COLD_CHUNK_BYTES, MIN_COLD_CHUNK_BYTES,
};
