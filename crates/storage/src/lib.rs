//! # vstore-storage
//!
//! The embedded segment store backing VStore — the stand-in for the LMDB
//! key-value store the paper uses (§5).
//!
//! VStore's storage workload is simple but specific: MB-sized values
//! (8-second video segments), keyed by `(stream, storage format, segment
//! index)`, written append-only at ingestion, read back by range at query
//! time, and deleted in bulk by the erosion planner. The store is therefore
//! a log-structured key-value store in the Bitcask style:
//!
//! * values live in append-only **value log** files with CRC-guarded
//!   records;
//! * an **in-memory index** maps keys to (file, offset, length) and is
//!   rebuilt by scanning the logs at open (tombstones supersede puts);
//! * **deletes** append tombstones; **compaction** rewrites live records
//!   into fresh logs and drops the garbage.
//!
//! All operations are thread-safe behind a [`parking_lot`] lock, mirroring
//! how VStore's single-writer, multi-reader ingestion and query paths use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod key;
pub mod log;
pub mod store;

pub use key::SegmentKey;
pub use store::{SegmentStore, StoreStats};
