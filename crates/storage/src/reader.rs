//! The unified read path: a [`SegmentReader`] fronting
//! [`SegmentStore::get`] with a **two-tier, shard-aware segment cache**.
//!
//! VStore's retrieval path is its bottleneck (§5, Figure 6 of the paper):
//! every cascade stage and every repeated query over a hot stream re-pays
//! disk + CRC + decode for the same segments. The reader interposes two
//! caches between the query engine and the store:
//!
//! * **Tier 1 — raw bytes.** A per-shard LRU over the serialized segment
//!   bytes, bounded by `cache_bytes` split across the store's shards. A hit
//!   skips the backend read *and* the CRC verification.
//! * **Tier 2 — decoded frames.** A per-shard LRU over
//!   [`DecodedSegment`]s, keyed by `(segment key, consumer sampling rate)`
//!   and bounded by `decoded_cache_entries`. A hit additionally skips
//!   container parsing and `decode_sampled` — the dominant cost for encoded
//!   formats.
//!
//! Both tiers are sharded exactly like the store (same key-hash routing),
//! so cache lookups never contend across shards and stay lock-cheap under
//! the parallel query runtime. Either tier can be disabled independently by
//! setting its capacity to 0; with both tiers off the reader is a pure
//! passthrough and the read path is byte-identical to the bare store.
//!
//! ## Coherence
//!
//! All mutations **must** flow through the reader ([`put`](SegmentReader::put)
//! / [`delete`](SegmentReader::delete)): each write bumps the target shard's
//! *invalidation epoch* and drops the key's entries from both tiers, so an
//! erode-then-read can never serve stale bytes. Fills re-check the epoch
//! before admitting an entry, which closes the race where a concurrent
//! delete lands between a fill's store read and its cache insert (the fill
//! is then discarded instead of resurrecting dead data). Compaction and log
//! roll-over rewrite *where* live records sit, never their value bytes, so
//! cached entries stay valid across both and need no re-keying.

use crate::key::SegmentKey;
use crate::store::SegmentStore;
use crate::tier::TierEngine;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Weak};
use vstore_codec::{SegmentData, VideoFrame};
use vstore_types::{FrameSampling, Result, StorageFormat};

/// Where a read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Tier 2: the decoded-frames cache (no store read, no decode).
    DecodedCache,
    /// Tier 1: the raw-bytes cache (no store read; decode still ran).
    RawCache,
    /// The segment store itself (a real backend read).
    Disk,
    /// The cold storage tier (the segment was demoted by erosion; it may
    /// have been promoted back by this read).
    Cold,
}

impl ReadSource {
    /// `true` when the read was served from memory rather than the store.
    #[must_use]
    pub fn is_cached(self) -> bool {
        matches!(self, ReadSource::DecodedCache | ReadSource::RawCache)
    }

    /// `true` when the read was served by the cold storage tier.
    #[must_use]
    pub fn is_cold(self) -> bool {
        matches!(self, ReadSource::Cold)
    }
}

/// One decoded segment as tier 2 caches it: the frames emitted by
/// [`SegmentData::decode_sampled`] at the cached sampling rate, plus the
/// metadata query accounting needs without re-parsing the container.
#[derive(Debug, Clone)]
pub struct DecodedSegment {
    /// The storage format the segment is stored in.
    pub storage_format: StorageFormat,
    /// Number of frames stored in the segment (before sampling).
    pub frame_count: usize,
    /// Length in bytes of the serialized segment the frames came from.
    pub raw_len: u64,
    /// The sampled, decoded frames in presentation order.
    pub frames: Vec<VideoFrame>,
}

/// The result of a decoded read: the (shared) decoded segment and where it
/// was served from.
#[derive(Debug, Clone)]
pub struct DecodedRead {
    /// The decoded segment.
    pub segment: Arc<DecodedSegment>,
    /// Which tier served it.
    pub source: ReadSource,
}

/// Statistics of one shard's cache (or the aggregate across shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Tier-1 reads served from the raw-bytes cache.
    pub raw_hits: u64,
    /// Tier-1 reads that had to go to the store (the key existed).
    pub raw_misses: u64,
    /// Tier-1 entries evicted to make room.
    pub raw_evictions: u64,
    /// Bytes currently resident in the raw-bytes cache.
    pub raw_resident_bytes: u64,
    /// Tier-2 reads served from the decoded-frames cache.
    pub decoded_hits: u64,
    /// Tier-2 reads that had to decode (from tier 1 or the store).
    pub decoded_misses: u64,
    /// Tier-2 entries evicted to make room.
    pub decoded_evictions: u64,
    /// Entries currently resident in the decoded-frames cache.
    pub decoded_entries: u64,
    /// Cached entries dropped by writes (put / delete / erosion).
    pub invalidations: u64,
}

impl CacheStats {
    /// Accumulate another shard's statistics into this aggregate.
    ///
    /// # Examples
    ///
    /// ```
    /// use vstore_storage::CacheStats;
    /// let mut total = CacheStats::default();
    /// let shard = CacheStats { raw_hits: 3, raw_misses: 1, ..Default::default() };
    /// total.accumulate(&shard);
    /// total.accumulate(&shard);
    /// assert_eq!(total.raw_hits, 6);
    /// assert!((total.raw_hit_rate() - 0.75).abs() < 1e-12);
    /// ```
    /// All additions saturate: a counter pinned at `u64::MAX` (a saturated,
    /// long-lived store) must degrade gracefully, never panic an operator's
    /// stats call in debug builds or wrap to a nonsense aggregate in
    /// release.
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.raw_hits = self.raw_hits.saturating_add(other.raw_hits);
        self.raw_misses = self.raw_misses.saturating_add(other.raw_misses);
        self.raw_evictions = self.raw_evictions.saturating_add(other.raw_evictions);
        self.raw_resident_bytes = self
            .raw_resident_bytes
            .saturating_add(other.raw_resident_bytes);
        self.decoded_hits = self.decoded_hits.saturating_add(other.decoded_hits);
        self.decoded_misses = self.decoded_misses.saturating_add(other.decoded_misses);
        self.decoded_evictions = self
            .decoded_evictions
            .saturating_add(other.decoded_evictions);
        self.decoded_entries = self.decoded_entries.saturating_add(other.decoded_entries);
        self.invalidations = self.invalidations.saturating_add(other.invalidations);
    }

    /// Fraction of tier-1 reads served from cache (0.0 when idle — never
    /// NaN).
    #[must_use]
    pub fn raw_hit_rate(&self) -> f64 {
        let total = self.raw_hits.saturating_add(self.raw_misses);
        if total == 0 {
            0.0
        } else {
            self.raw_hits as f64 / total as f64
        }
    }

    /// Fraction of tier-2 reads served from cache (0.0 when idle — never
    /// NaN).
    #[must_use]
    pub fn decoded_hit_rate(&self) -> f64 {
        let total = self.decoded_hits.saturating_add(self.decoded_misses);
        if total == 0 {
            0.0
        } else {
            self.decoded_hits as f64 / total as f64
        }
    }

    /// `true` when no read has touched the cache yet.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.raw_hits == 0
            && self.raw_misses == 0
            && self.decoded_hits == 0
            && self.decoded_misses == 0
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "raw {}/{} hits ({:.0}%), {} resident bytes, {} evictions | \
             decoded {}/{} hits ({:.0}%), {} entries, {} evictions | {} invalidations",
            self.raw_hits,
            self.raw_hits.saturating_add(self.raw_misses),
            self.raw_hit_rate() * 100.0,
            self.raw_resident_bytes,
            self.raw_evictions,
            self.decoded_hits,
            self.decoded_hits.saturating_add(self.decoded_misses),
            self.decoded_hit_rate() * 100.0,
            self.decoded_entries,
            self.decoded_evictions,
            self.invalidations,
        )
    }
}

/// A weight-bounded LRU map. Recency is tracked with a monotone tick per
/// entry plus a `BTreeMap` from tick to key, so get/insert/evict are all
/// `O(log n)` and fully deterministic.
struct LruCache<K, V> {
    map: HashMap<K, LruEntry<V>>,
    order: BTreeMap<u64, K>,
    tick: u64,
    capacity: u64,
    used: u64,
}

struct LruEntry<V> {
    value: V,
    weight: u64,
    tick: u64,
}

impl<K: Eq + Hash + Ord + Clone, V: Clone> LruCache<K, V> {
    fn new(capacity: u64) -> Self {
        LruCache {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            capacity,
            used: 0,
        }
    }

    /// Look up a key, marking it most-recently used on a hit.
    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(key)?;
        self.order.remove(&entry.tick);
        entry.tick = tick;
        self.order.insert(tick, key.clone());
        Some(entry.value.clone())
    }

    /// Insert a key, evicting least-recently-used entries until the weight
    /// fits. Returns how many entries were evicted. An entry heavier than
    /// the whole cache is not admitted.
    fn insert(&mut self, key: K, value: V, weight: u64) -> u64 {
        if weight > self.capacity {
            return 0;
        }
        self.remove(&key);
        let mut evicted = 0;
        while self.used + weight > self.capacity {
            // The loop guard proves used > 0, so both maps are non-empty
            // and agree on membership: eviction cannot miss.
            let (&oldest_tick, _) = self.order.iter().next().expect("used > 0 implies entries"); // vstore-lint: allow(no-unwrap)
            let oldest_key = self.order.remove(&oldest_tick).expect("tick just seen"); // vstore-lint: allow(no-unwrap)
            let old = self.map.remove(&oldest_key).expect("order and map agree"); // vstore-lint: allow(no-unwrap)
            self.used -= old.weight;
            evicted += 1;
        }
        self.tick += 1;
        self.order.insert(self.tick, key.clone());
        self.map.insert(
            key,
            LruEntry {
                value,
                weight,
                tick: self.tick,
            },
        );
        self.used += weight;
        evicted
    }

    /// Remove a key. Returns `true` when an entry was dropped.
    fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(entry) => {
                self.order.remove(&entry.tick);
                self.used -= entry.weight;
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Key of one tier-2 entry: which segment, decoded at which sampling rate.
type DecodedKey = (SegmentKey, FrameSampling);

/// One shard's cache state: both tiers, the invalidation epoch and the
/// counters, all behind a single short-held mutex.
struct ShardCache {
    raw: LruCache<SegmentKey, Arc<Vec<u8>>>,
    decoded: LruCache<DecodedKey, Arc<DecodedSegment>>,
    /// Bumped by every write routed to this shard; fills re-check it before
    /// admitting, so an entry read before a concurrent write is discarded
    /// instead of cached stale.
    epoch: u64,
    raw_hits: u64,
    raw_misses: u64,
    raw_evictions: u64,
    decoded_hits: u64,
    decoded_misses: u64,
    decoded_evictions: u64,
    invalidations: u64,
}

impl ShardCache {
    fn new(raw_capacity: u64, decoded_capacity: u64) -> Self {
        ShardCache {
            raw: LruCache::new(raw_capacity),
            decoded: LruCache::new(decoded_capacity),
            epoch: 0,
            raw_hits: 0,
            raw_misses: 0,
            raw_evictions: 0,
            decoded_hits: 0,
            decoded_misses: 0,
            decoded_evictions: 0,
            invalidations: 0,
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            raw_hits: self.raw_hits,
            raw_misses: self.raw_misses,
            raw_evictions: self.raw_evictions,
            raw_resident_bytes: self.raw.used,
            decoded_hits: self.decoded_hits,
            decoded_misses: self.decoded_misses,
            decoded_evictions: self.decoded_evictions,
            decoded_entries: self.decoded.len() as u64,
            invalidations: self.invalidations,
        }
    }
}

/// The unified read (and invalidating write) path over a [`SegmentStore`].
///
/// See the [module docs](self) for the cache design. The reader is
/// internally synchronised per shard; share it via `Arc` between however
/// many ingest and query threads the deployment runs. Reads not routed
/// through this reader stay correct (the store is the source of truth);
/// writes **must** go through [`put`](Self::put) / [`delete`](Self::delete)
/// or cached entries go stale.
pub struct SegmentReader {
    store: Arc<SegmentStore>,
    /// One cache per store shard; empty when both tiers are disabled, which
    /// makes every operation a lock-free passthrough.
    shards: Vec<Mutex<ShardCache>>,
    raw_per_shard: u64,
    decoded_per_shard: u64,
    /// The cold-storage tiering engine, when one is attached
    /// ([`attach_tier`](Self::attach_tier)): store misses fall through to
    /// the cold tier and promote on a hit. Held weakly — the engine (and
    /// its workers) holds the reader, not the other way round.
    tier: RwLock<Weak<TierEngine>>,
}

impl std::fmt::Debug for SegmentReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentReader")
            .field("shards", &self.shards.len())
            .field("raw_per_shard_bytes", &self.raw_per_shard)
            .field("decoded_per_shard_entries", &self.decoded_per_shard)
            .finish()
    }
}

impl SegmentReader {
    /// A reader over `store` with `cache_bytes` of tier-1 capacity and
    /// `decoded_entries` of tier-2 capacity, each split evenly across the
    /// store's shards (rounded up to at least one unit per shard when the
    /// tier is enabled, so the effective bound is per-shard granular).
    /// Either capacity may be 0 to disable that tier; both 0 yields a pure
    /// passthrough.
    pub fn new(store: Arc<SegmentStore>, cache_bytes: u64, decoded_entries: usize) -> Self {
        let shard_count = store.shard_count().max(1) as u64;
        let raw_per_shard = if cache_bytes == 0 {
            0
        } else {
            (cache_bytes / shard_count).max(1)
        };
        let decoded_per_shard = if decoded_entries == 0 {
            0
        } else {
            (decoded_entries as u64 / shard_count).max(1)
        };
        let shards = if raw_per_shard == 0 && decoded_per_shard == 0 {
            Vec::new()
        } else {
            (0..store.shard_count())
                .map(|_| Mutex::new(ShardCache::new(raw_per_shard, decoded_per_shard)))
                .collect()
        };
        SegmentReader {
            store,
            shards,
            raw_per_shard,
            decoded_per_shard,
            tier: RwLock::new(Weak::new()),
        }
    }

    /// Attach a tiering engine: store misses now fall through to its cold
    /// store ([`ReadSource::Cold`]), promoting on a hit when the engine is
    /// configured to. The engine must demote from this reader's store.
    ///
    /// # Panics
    ///
    /// Panics when `tier` fronts a different hot store instance.
    pub fn attach_tier(&self, tier: &Arc<TierEngine>) {
        assert!(
            Arc::ptr_eq(tier.hot_store(), &self.store),
            "TierEngine demotes from a different store than this reader"
        );
        *self.tier.write() = Arc::downgrade(tier);
    }

    /// The attached tiering engine, if it is still alive.
    #[must_use]
    pub fn tier(&self) -> Option<Arc<TierEngine>> {
        self.tier.read().upgrade()
    }

    /// A store miss falls through to the cold tier (when one is attached):
    /// returns the segment's bytes and promotes them per the engine's
    /// configuration. `Ok(None)` when the key is in neither tier.
    fn cold_fallthrough(&self, key: &SegmentKey) -> Result<Option<Vec<u8>>> {
        match self.tier() {
            Some(engine) => engine.read_through(key, self),
            None => Ok(None),
        }
    }

    /// A passthrough reader: no caching, byte-identical to the bare store.
    pub fn disabled(store: Arc<SegmentStore>) -> Self {
        Self::new(store, 0, 0)
    }

    /// The store behind this reader.
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// `true` when at least one cache tier is enabled.
    #[must_use]
    pub fn is_cache_enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    /// Fetch a segment's raw bytes through tier 1. Returns the bytes and
    /// where they were served from; `Ok(None)` when the key does not exist.
    pub fn get(&self, key: &SegmentKey) -> Result<Option<(Arc<Vec<u8>>, ReadSource)>> {
        if self.raw_per_shard == 0 {
            return match self.store.get(key)? {
                Some(bytes) => Ok(Some((Arc::new(bytes), ReadSource::Disk))),
                None => Ok(self
                    .cold_fallthrough(key)?
                    .map(|bytes| (Arc::new(bytes), ReadSource::Cold))),
            };
        }
        let idx = self.store.shard_index(key);
        let epoch = {
            let mut shard = self.shards[idx].lock();
            if let Some(bytes) = shard.raw.get(key) {
                shard.raw_hits += 1;
                return Ok(Some((bytes, ReadSource::RawCache)));
            }
            shard.epoch
        };
        let bytes = match self.store.get(key)? {
            Some(bytes) => Arc::new(bytes),
            None => {
                // Cold bytes are returned but not admitted: a promotion has
                // just bumped the epoch, and the next (hot) read warms the
                // cache through the ordinary fill path.
                return Ok(self
                    .cold_fallthrough(key)?
                    .map(|bytes| (Arc::new(bytes), ReadSource::Cold)));
            }
        };
        let mut shard = self.shards[idx].lock();
        shard.raw_misses += 1;
        if shard.epoch == epoch {
            let evicted = shard
                .raw
                .insert(key.clone(), Arc::clone(&bytes), bytes.len() as u64);
            shard.raw_evictions += evicted;
        }
        Ok(Some((bytes, ReadSource::Disk)))
    }

    /// Fetch a segment decoded at `sampling`, through both tiers: tier 2
    /// returns the frames outright; tier 1 skips the store read but still
    /// decodes; a full miss reads, decodes and warms both tiers. `Ok(None)`
    /// when the key does not exist.
    pub fn get_decoded(
        &self,
        key: &SegmentKey,
        sampling: FrameSampling,
    ) -> Result<Option<DecodedRead>> {
        if self.shards.is_empty() {
            let (bytes, source) = match self.store.get(key)? {
                Some(bytes) => (bytes, ReadSource::Disk),
                None => match self.cold_fallthrough(key)? {
                    Some(bytes) => (bytes, ReadSource::Cold),
                    None => return Ok(None),
                },
            };
            return Ok(Some(DecodedRead {
                segment: Arc::new(decode_entry(&bytes, sampling)?),
                source,
            }));
        }
        let idx = self.store.shard_index(key);
        let mut raw_hit = None;
        let epoch = {
            let mut shard = self.shards[idx].lock();
            if self.decoded_per_shard > 0 {
                if let Some(segment) = shard.decoded.get(&(key.clone(), sampling)) {
                    shard.decoded_hits += 1;
                    return Ok(Some(DecodedRead {
                        segment,
                        source: ReadSource::DecodedCache,
                    }));
                }
            }
            if self.raw_per_shard > 0 {
                if let Some(bytes) = shard.raw.get(key) {
                    shard.raw_hits += 1;
                    raw_hit = Some(bytes);
                }
            }
            shard.epoch
        };
        let (bytes, source) = match raw_hit {
            Some(bytes) => (bytes, ReadSource::RawCache),
            None => match self.store.get(key)? {
                Some(bytes) => (Arc::new(bytes), ReadSource::Disk),
                None => match self.cold_fallthrough(key)? {
                    Some(bytes) => (Arc::new(bytes), ReadSource::Cold),
                    None => return Ok(None),
                },
            },
        };
        // Decode outside the shard lock: parallel prefetch workers hitting
        // the same shard must not serialise on the decode.
        let segment = Arc::new(decode_entry(&bytes, sampling)?);
        let mut shard = self.shards[idx].lock();
        if source == ReadSource::Disk && self.raw_per_shard > 0 {
            shard.raw_misses += 1;
            if shard.epoch == epoch {
                let evicted = shard
                    .raw
                    .insert(key.clone(), Arc::clone(&bytes), bytes.len() as u64);
                shard.raw_evictions += evicted;
            }
        }
        if self.decoded_per_shard > 0 {
            shard.decoded_misses += 1;
            if shard.epoch == epoch {
                let evicted =
                    shard
                        .decoded
                        .insert((key.clone(), sampling), Arc::clone(&segment), 1);
                shard.decoded_evictions += evicted;
            }
        }
        Ok(Some(DecodedRead { segment, source }))
    }

    /// Store a segment, dropping any cached entries for the key so the next
    /// read observes the new bytes. New values are deliberately *not*
    /// admitted to the cache: ingestion would otherwise evict the hot query
    /// working set with segments nobody has read yet.
    pub fn put(&self, key: &SegmentKey, value: &[u8]) -> Result<()> {
        self.store.put(key, value)?;
        self.invalidate(key);
        Ok(())
    }

    /// Delete a segment (erosion's primitive), dropping any cached entries
    /// for the key so an erode-then-read can never serve stale bytes.
    pub fn delete(&self, key: &SegmentKey) -> Result<()> {
        self.store.delete(key)?;
        self.invalidate(key);
        Ok(())
    }

    /// `true` if the key exists in the store.
    #[must_use]
    pub fn contains(&self, key: &SegmentKey) -> bool {
        self.store.contains(key)
    }

    /// Compact every store shard. Compaction rewrites where live records
    /// sit, never their value bytes, so cached entries stay valid and no
    /// invalidation happens.
    pub fn compact(&self) -> Result<u64> {
        self.store.compact()
    }

    /// Aggregate cache statistics (the sum across every shard).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for stats in self.shard_cache_stats() {
            total.accumulate(&stats);
        }
        total
    }

    /// Per-shard cache statistics, in shard order. Empty when the cache is
    /// disabled.
    #[must_use]
    pub fn shard_cache_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| shard.lock().stats())
            .collect()
    }

    /// Drop the key's entries from both tiers and bump the shard's epoch so
    /// in-flight fills that read before this write cannot be admitted.
    fn invalidate(&self, key: &SegmentKey) {
        if self.shards.is_empty() {
            return;
        }
        let idx = self.store.shard_index(key);
        let mut shard = self.shards[idx].lock();
        shard.epoch += 1;
        let mut removed = u64::from(shard.raw.remove(key));
        // Sampling rates are a small enum, so dropping every possible tier-2
        // entry for the key is O(variants) point removals — never a scan of
        // the whole shard cache under its lock.
        let mut probe = (key.clone(), FrameSampling::Full);
        for sampling in FrameSampling::ALL {
            probe.1 = sampling;
            removed += u64::from(shard.decoded.remove(&probe));
        }
        shard.invalidations += removed;
    }
}

/// Parse and decode one serialized segment at the given sampling rate.
fn decode_entry(bytes: &[u8], sampling: FrameSampling) -> Result<DecodedSegment> {
    let data = SegmentData::from_bytes(bytes)?;
    let (frames, _) = data.decode_sampled(sampling)?;
    Ok(DecodedSegment {
        storage_format: data.storage_format(),
        frame_count: data.frame_count(),
        raw_len: bytes.len() as u64,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SegmentStore;
    use vstore_codec::container::RawSegment;
    use vstore_codec::encode_segment;
    use vstore_codec::frame::materialize_clip;
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_types::{Fidelity, FormatId, KeyframeInterval, SpeedStep, VStoreError};

    fn key(index: u64) -> SegmentKey {
        SegmentKey::new("reader", FormatId(1), index)
    }

    fn mem_reader(cache_bytes: u64, decoded_entries: usize) -> SegmentReader {
        let store = Arc::new(SegmentStore::open_mem_with_shards(4).unwrap());
        SegmentReader::new(store, cache_bytes, decoded_entries)
    }

    /// A small but real serialized segment (15 raw frames of one dataset).
    fn segment_bytes() -> Vec<u8> {
        let source = VideoSource::new(Dataset::Jackson);
        let fidelity = Fidelity::new(
            vstore_types::ImageQuality::Good,
            vstore_types::CropFactor::C75,
            vstore_types::Resolution::R180,
            vstore_types::FrameSampling::Full,
        );
        let frames = materialize_clip(&source.clip(0, 15), fidelity);
        SegmentData::Raw(RawSegment { fidelity, frames }).to_bytes()
    }

    /// An encoded variant, so decode_sampled actually decodes.
    fn encoded_segment_bytes() -> Vec<u8> {
        let source = VideoSource::new(Dataset::Jackson);
        let fidelity = Fidelity::new(
            vstore_types::ImageQuality::Good,
            vstore_types::CropFactor::C75,
            vstore_types::Resolution::R180,
            vstore_types::FrameSampling::Full,
        );
        let frames = materialize_clip(&source.clip(0, 15), fidelity);
        let encoded = encode_segment(&frames, KeyframeInterval::K5, SpeedStep::Fast).unwrap();
        SegmentData::Encoded(encoded).to_bytes()
    }

    #[test]
    fn raw_tier_serves_second_read_from_cache() {
        let reader = mem_reader(1 << 20, 0);
        reader.put(&key(0), b"segment-bytes").unwrap();
        let (bytes, source) = reader.get(&key(0)).unwrap().unwrap();
        assert_eq!(&*bytes, b"segment-bytes");
        assert_eq!(source, ReadSource::Disk);
        let (bytes, source) = reader.get(&key(0)).unwrap().unwrap();
        assert_eq!(&*bytes, b"segment-bytes");
        assert_eq!(source, ReadSource::RawCache);
        let stats = reader.cache_stats();
        assert_eq!(stats.raw_hits, 1);
        assert_eq!(stats.raw_misses, 1);
        assert_eq!(stats.raw_resident_bytes, b"segment-bytes".len() as u64);
    }

    #[test]
    fn disabled_reader_is_a_passthrough_with_no_stats() {
        let reader = mem_reader(0, 0);
        assert!(!reader.is_cache_enabled());
        reader.put(&key(0), b"plain").unwrap();
        for _ in 0..3 {
            let (bytes, source) = reader.get(&key(0)).unwrap().unwrap();
            assert_eq!(&*bytes, b"plain");
            assert_eq!(source, ReadSource::Disk);
        }
        assert_eq!(reader.cache_stats(), CacheStats::default());
        assert!(reader.shard_cache_stats().is_empty());
    }

    #[test]
    fn put_and_delete_invalidate_cached_bytes() {
        let reader = mem_reader(1 << 20, 0);
        reader.put(&key(0), b"old").unwrap();
        reader.get(&key(0)).unwrap().unwrap(); // warm
        reader.put(&key(0), b"new").unwrap();
        let (bytes, source) = reader.get(&key(0)).unwrap().unwrap();
        assert_eq!(&*bytes, b"new", "overwrite must not serve stale bytes");
        assert_eq!(source, ReadSource::Disk);
        reader.get(&key(0)).unwrap().unwrap(); // warm again
        reader.delete(&key(0)).unwrap();
        assert!(
            reader.get(&key(0)).unwrap().is_none(),
            "delete must not leave a cached ghost"
        );
        assert!(reader.cache_stats().invalidations >= 2);
    }

    #[test]
    fn lru_evicts_oldest_and_never_admits_oversized_values() {
        // Single shard so the capacity arithmetic is exact.
        let store = Arc::new(SegmentStore::open_mem_with_shards(1).unwrap());
        let reader = SegmentReader::new(store, 100, 0);
        reader.put(&key(1), &[1u8; 60]).unwrap();
        reader.put(&key(2), &[2u8; 60]).unwrap();
        reader.get(&key(1)).unwrap().unwrap(); // resident: {1}
        reader.get(&key(2)).unwrap().unwrap(); // 60 + 60 > 100 → evicts 1
        let stats = reader.cache_stats();
        assert_eq!(stats.raw_evictions, 1);
        assert_eq!(stats.raw_resident_bytes, 60);
        let (_, source) = reader.get(&key(2)).unwrap().unwrap();
        assert_eq!(source, ReadSource::RawCache);
        let (_, source) = reader.get(&key(1)).unwrap().unwrap();
        assert_eq!(source, ReadSource::Disk, "evicted entry re-reads from disk");
        // An entry larger than the whole cache is not admitted at all.
        reader.put(&key(3), &[3u8; 200]).unwrap();
        reader.get(&key(3)).unwrap().unwrap();
        let (_, source) = reader.get(&key(3)).unwrap().unwrap();
        assert_eq!(source, ReadSource::Disk);
    }

    #[test]
    fn decoded_tier_skips_decode_on_repeat_and_is_keyed_by_sampling() {
        let reader = mem_reader(0, 64);
        let bytes = encoded_segment_bytes();
        reader.put(&key(0), &bytes).unwrap();

        let full = FrameSampling::Full;
        let sparse = FrameSampling::S1_6;
        let first = reader.get_decoded(&key(0), full).unwrap().unwrap();
        assert_eq!(first.source, ReadSource::Disk);
        assert_eq!(first.segment.raw_len, bytes.len() as u64);
        assert_eq!(first.segment.frame_count, 15);
        let second = reader.get_decoded(&key(0), full).unwrap().unwrap();
        assert_eq!(second.source, ReadSource::DecodedCache);
        assert_eq!(second.segment.frames.len(), first.segment.frames.len());
        // A different sampling rate is a different tier-2 key.
        let sampled = reader.get_decoded(&key(0), sparse).unwrap().unwrap();
        assert_eq!(sampled.source, ReadSource::Disk);
        assert!(sampled.segment.frames.len() < first.segment.frames.len());
        let stats = reader.cache_stats();
        assert_eq!(stats.decoded_hits, 1);
        assert_eq!(stats.decoded_misses, 2);
        assert_eq!(stats.decoded_entries, 2);
    }

    #[test]
    fn both_tiers_compose_raw_hit_feeds_decoded_fill() {
        let reader = mem_reader(4 << 20, 64);
        let bytes = segment_bytes();
        reader.put(&key(0), &bytes).unwrap();
        assert_eq!(
            reader
                .get_decoded(&key(0), FrameSampling::Full)
                .unwrap()
                .unwrap()
                .source,
            ReadSource::Disk
        );
        // Same key at a new sampling: tier 2 misses, tier 1 hits.
        assert_eq!(
            reader
                .get_decoded(&key(0), FrameSampling::S1_30)
                .unwrap()
                .unwrap()
                .source,
            ReadSource::RawCache
        );
        assert_eq!(
            reader
                .get_decoded(&key(0), FrameSampling::S1_30)
                .unwrap()
                .unwrap()
                .source,
            ReadSource::DecodedCache
        );
    }

    #[test]
    fn delete_invalidates_every_sampling_of_the_key() {
        let reader = mem_reader(1 << 20, 64);
        let bytes = segment_bytes();
        reader.put(&key(0), &bytes).unwrap();
        reader.get_decoded(&key(0), FrameSampling::Full).unwrap();
        reader.get_decoded(&key(0), FrameSampling::S1_6).unwrap();
        assert_eq!(reader.cache_stats().decoded_entries, 2);
        reader.delete(&key(0)).unwrap();
        assert_eq!(reader.cache_stats().decoded_entries, 0);
        assert!(reader
            .get_decoded(&key(0), FrameSampling::Full)
            .unwrap()
            .is_none());
    }

    #[test]
    fn decode_errors_surface_and_are_not_cached() {
        let reader = mem_reader(1 << 20, 64);
        reader.put(&key(0), b"not a segment").unwrap();
        for _ in 0..2 {
            let err = reader
                .get_decoded(&key(0), FrameSampling::Full)
                .unwrap_err();
            assert!(matches!(err, VStoreError::Corruption(_)), "{err}");
        }
        assert_eq!(reader.cache_stats().decoded_entries, 0);
    }

    /// Regression (stats rate math): an idle cache renders 0% rates —
    /// never NaN from 0/0 — and a counter-saturated cache renders without
    /// overflowing the totals (a debug-build panic before the hardening).
    #[test]
    fn stats_display_handles_empty_and_saturated_counters() {
        let empty = CacheStats::default();
        assert!(empty.is_idle());
        assert_eq!(empty.raw_hit_rate(), 0.0);
        assert_eq!(empty.decoded_hit_rate(), 0.0);
        let rendered = empty.to_string();
        assert!(rendered.contains("0/0 hits (0%)"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");

        let saturated = CacheStats {
            raw_hits: u64::MAX,
            raw_misses: u64::MAX,
            decoded_hits: u64::MAX,
            decoded_misses: 1,
            ..CacheStats::default()
        };
        // Totals saturate instead of wrapping/panicking, and the rates stay
        // finite fractions.
        let rendered = saturated.to_string();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(saturated.raw_hit_rate() > 0.0 && saturated.raw_hit_rate() <= 1.0);
        assert!(saturated.decoded_hit_rate() > 0.0 && saturated.decoded_hit_rate() <= 1.0);
        let mut total = saturated;
        total.accumulate(&saturated);
        assert_eq!(total.raw_hits, u64::MAX, "accumulate must saturate");
    }

    #[test]
    fn concurrent_readers_and_writers_never_observe_stale_bytes() {
        let store = Arc::new(SegmentStore::open_mem_with_shards(4).unwrap());
        let reader = Arc::new(SegmentReader::new(Arc::clone(&store), 1 << 20, 32));
        let bytes = segment_bytes();
        for i in 0..8 {
            reader.put(&key(i), &bytes).unwrap();
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reader = Arc::clone(&reader);
                let bytes = bytes.clone();
                scope.spawn(move || {
                    for round in 0..200u64 {
                        let k = key(round % 8);
                        if let Some((got, _)) = reader.get(&k).unwrap() {
                            assert_eq!(*got, bytes, "stale or torn read");
                        }
                        if let Some(read) = reader.get_decoded(&k, FrameSampling::Full).unwrap() {
                            assert_eq!(read.segment.raw_len, bytes.len() as u64);
                        }
                    }
                });
            }
            let writer = Arc::clone(&reader);
            let value = bytes.clone();
            scope.spawn(move || {
                for round in 0..100u64 {
                    let k = key(round % 8);
                    writer.delete(&k).unwrap();
                    writer.put(&k, &value).unwrap();
                }
            });
        });
        // After the dust settles every key reads back the canonical bytes.
        for i in 0..8 {
            let (got, _) = reader.get(&key(i)).unwrap().unwrap();
            assert_eq!(*got, bytes);
        }
    }
}
