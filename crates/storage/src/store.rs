//! The segment store: a thread-safe, log-structured key-value store for
//! MB-sized video segments.

use crate::key::SegmentKey;
use crate::log::{record_size, LogFile};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use vstore_types::{ByteSize, FormatId, Result, VStoreError};

/// Target maximum size of one value log file before the store rolls over to
/// a new one (64 MiB keeps compaction granular without creating thousands of
/// files).
const LOG_ROLL_BYTES: u64 = 64 * 1024 * 1024;

/// Where a live value lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ValueLocation {
    file_id: u64,
    offset: u64,
    total_len: u64,
    value_len: u64,
}

/// Aggregate statistics about the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of live segments.
    pub live_segments: usize,
    /// Total bytes of live segment values.
    pub live_bytes: u64,
    /// Total bytes occupied on disk by all value logs (including garbage).
    pub disk_bytes: u64,
    /// Number of value log files.
    pub log_files: usize,
    /// Records written since the store was opened (puts + deletes).
    pub writes: u64,
    /// Reads served since the store was opened.
    pub reads: u64,
}

impl StoreStats {
    /// Live bytes as a [`ByteSize`].
    pub fn live_size(&self) -> ByteSize {
        ByteSize(self.live_bytes)
    }

    /// Fraction of on-disk bytes that are garbage (superseded or deleted).
    pub fn garbage_ratio(&self) -> f64 {
        if self.disk_bytes == 0 {
            0.0
        } else {
            1.0 - (self.live_bytes as f64 / self.disk_bytes as f64).min(1.0)
        }
    }
}

#[derive(Debug)]
struct StoreInner {
    dir: PathBuf,
    index: BTreeMap<SegmentKey, ValueLocation>,
    active: LogFile,
    sealed: BTreeMap<u64, PathBuf>,
    stats_writes: u64,
    stats_reads: u64,
    disk_bytes: u64,
}

/// The segment store.
///
/// Cloneable handles share one underlying store; all operations are
/// internally synchronised.
#[derive(Debug)]
pub struct SegmentStore {
    inner: Mutex<StoreInner>,
}

impl SegmentStore {
    /// Open (or create) a store rooted at `dir`, rebuilding the index by
    /// scanning the value logs.
    pub fn open(dir: impl AsRef<Path>) -> Result<SegmentStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Discover existing log files in id order.
        let mut ids: Vec<u64> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().and_then(LogFile::parse_id))
            .collect();
        ids.sort_unstable();

        let mut index = BTreeMap::new();
        let mut sealed = BTreeMap::new();
        let mut disk_bytes = 0u64;
        for &id in &ids {
            let path = dir.join(LogFile::file_name(id));
            let records = LogFile::scan(&path)?;
            for record in records {
                let key = SegmentKey::decode(&record.key)?;
                if record.is_tombstone {
                    index.remove(&key);
                } else {
                    index.insert(
                        key,
                        ValueLocation {
                            file_id: id,
                            offset: record.offset,
                            total_len: record.total_len,
                            value_len: record.value.len() as u64,
                        },
                    );
                }
            }
            disk_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            sealed.insert(id, path);
        }
        // The active log is a fresh file after the highest existing id; this
        // keeps recovery simple (sealed files are never appended to again).
        let next_id = ids.last().map(|id| id + 1).unwrap_or(1);
        let active = LogFile::create(&dir, next_id)?;
        Ok(SegmentStore {
            inner: Mutex::new(StoreInner {
                dir,
                index,
                active,
                sealed,
                stats_writes: 0,
                stats_reads: 0,
                disk_bytes,
            }),
        })
    }

    /// Open a store in a fresh temporary directory (tests, examples and
    /// benchmarks). The directory is *not* cleaned up automatically.
    pub fn open_temp(tag: &str) -> Result<SegmentStore> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let dir = std::env::temp_dir().join(format!("vstore-{tag}-{}-{nanos}", std::process::id()));
        SegmentStore::open(dir)
    }

    /// The root directory of the store.
    pub fn dir(&self) -> PathBuf {
        self.inner.lock().dir.clone()
    }

    /// Store a segment, replacing any previous value under the same key.
    pub fn put(&self, key: &SegmentKey, value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.roll_if_needed()?;
        let encoded_key = key.encode();
        let (offset, total_len) = inner.active.append(&encoded_key, value, false)?;
        let file_id = inner.active.id;
        inner.index.insert(
            key.clone(),
            ValueLocation { file_id, offset, total_len, value_len: value.len() as u64 },
        );
        inner.stats_writes += 1;
        inner.disk_bytes += total_len;
        Ok(())
    }

    /// Fetch a segment. Returns `Ok(None)` when the key does not exist.
    pub fn get(&self, key: &SegmentKey) -> Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.stats_reads += 1;
        let location = match inner.index.get(key) {
            Some(loc) => *loc,
            None => return Ok(None),
        };
        let value = inner.read_at(location)?;
        Ok(Some(value))
    }

    /// `true` if the key exists.
    pub fn contains(&self, key: &SegmentKey) -> bool {
        self.inner.lock().index.contains_key(key)
    }

    /// Delete a segment. Deleting a missing key is a no-op.
    pub fn delete(&self, key: &SegmentKey) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.index.remove(key).is_none() {
            return Ok(());
        }
        inner.roll_if_needed()?;
        let encoded_key = key.encode();
        let (_, total_len) = inner.active.append(&encoded_key, &[], true)?;
        inner.stats_writes += 1;
        inner.disk_bytes += total_len;
        Ok(())
    }

    /// All keys for one `(stream, format)` pair, in segment order.
    pub fn segments_of(&self, stream: &str, format: FormatId) -> Vec<SegmentKey> {
        let lo = SegmentKey::new(stream, format, 0);
        let hi = SegmentKey::new(stream, format, u64::MAX);
        self.inner.lock().index.range(lo..=hi).map(|(k, _)| k.clone()).collect()
    }

    /// All live keys, in key order.
    pub fn keys(&self) -> Vec<SegmentKey> {
        self.inner.lock().index.keys().cloned().collect()
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// `true` when no live segment exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of live values stored for one `(stream, format)` pair.
    pub fn bytes_of(&self, stream: &str, format: FormatId) -> ByteSize {
        let lo = SegmentKey::new(stream, format, 0);
        let hi = SegmentKey::new(stream, format, u64::MAX);
        ByteSize(self.inner.lock().index.range(lo..=hi).map(|(_, v)| v.value_len).sum())
    }

    /// Store statistics.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            live_segments: inner.index.len(),
            live_bytes: inner.index.values().map(|v| v.value_len).sum(),
            disk_bytes: inner.disk_bytes,
            log_files: inner.sealed.len() + 1,
            writes: inner.stats_writes,
            reads: inner.stats_reads,
        }
    }

    /// Flush and fsync the active log.
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().active.sync()
    }

    /// Rewrite all live records into fresh log files and delete the old
    /// ones, reclaiming space left by deletions and overwrites. Returns the
    /// number of bytes reclaimed.
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        let before = inner.disk_bytes;
        // Collect live key/value pairs (reading through the old files).
        let entries: Vec<(SegmentKey, ValueLocation)> =
            inner.index.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mut values = Vec::with_capacity(entries.len());
        for (key, loc) in &entries {
            values.push((key.clone(), inner.read_at(*loc)?));
        }
        // Remember the old files, then start a new generation.
        let old_files: Vec<PathBuf> = inner
            .sealed
            .values()
            .cloned()
            .chain(std::iter::once(inner.active.path().to_path_buf()))
            .collect();
        let next_id = inner.active.id + 1;
        inner.sealed.clear();
        inner.active = LogFile::create(&inner.dir, next_id)?;
        inner.index.clear();
        inner.disk_bytes = 0;
        for (key, value) in values {
            inner.roll_if_needed()?;
            let encoded = key.encode();
            let (offset, total_len) = inner.active.append(&encoded, &value, false)?;
            let file_id = inner.active.id;
            inner.index.insert(
                key,
                ValueLocation { file_id, offset, total_len, value_len: value.len() as u64 },
            );
            inner.disk_bytes += total_len;
        }
        inner.active.sync()?;
        for path in old_files {
            fs::remove_file(&path).ok();
        }
        Ok(before.saturating_sub(inner.disk_bytes))
    }

    /// Approximate on-disk cost of storing a value of `value_len` bytes under
    /// `key` (framing included). Used by capacity planning.
    pub fn on_disk_cost(key: &SegmentKey, value_len: usize) -> u64 {
        record_size(key.encode().len(), value_len)
    }
}

impl StoreInner {
    fn roll_if_needed(&mut self) -> Result<()> {
        if self.active.len() >= LOG_ROLL_BYTES {
            self.active.sync()?;
            let old_id = self.active.id;
            let old_path = self.active.path().to_path_buf();
            self.sealed.insert(old_id, old_path);
            self.active = LogFile::create(&self.dir, old_id + 1)?;
        }
        Ok(())
    }

    fn read_at(&self, location: ValueLocation) -> Result<Vec<u8>> {
        let path = if location.file_id == self.active.id {
            self.active.path().to_path_buf()
        } else {
            self.sealed
                .get(&location.file_id)
                .cloned()
                .ok_or_else(|| {
                    VStoreError::corruption(format!("missing log file {}", location.file_id))
                })?
        };
        // Reads go through a scoped LogFile-style read to keep CRC checking.
        let log = LogFileReadHandle { path };
        log.read_value(location.offset, location.total_len)
    }
}

/// A read-only handle for random access into a log file.
struct LogFileReadHandle {
    path: PathBuf,
}

impl LogFileReadHandle {
    fn read_value(&self, offset: u64, total_len: u64) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = fs::File::open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; total_len as usize];
        file.read_exact(&mut buf)?;
        // Re-parse the record to verify the CRC.
        let records = crate::log::LogFile::scan_buffer(&buf, offset)?;
        records
            .into_iter()
            .next()
            .map(|r| r.value)
            .ok_or_else(|| VStoreError::corruption("record failed CRC on read"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn store(tag: &str) -> SegmentStore {
        SegmentStore::open_temp(tag).unwrap()
    }

    fn cleanup(store: &SegmentStore) {
        fs::remove_dir_all(store.dir()).ok();
    }

    fn key(stream: &str, format: u32, index: u64) -> SegmentKey {
        SegmentKey::new(stream, FormatId(format), index)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let s = store("crud");
        let k = key("jackson", 1, 0);
        assert_eq!(s.get(&k).unwrap(), None);
        s.put(&k, b"segment-bytes").unwrap();
        assert_eq!(s.get(&k).unwrap().unwrap(), b"segment-bytes");
        assert!(s.contains(&k));
        // Overwrite.
        s.put(&k, b"new-bytes").unwrap();
        assert_eq!(s.get(&k).unwrap().unwrap(), b"new-bytes");
        // Delete.
        s.delete(&k).unwrap();
        assert_eq!(s.get(&k).unwrap(), None);
        assert!(!s.contains(&k));
        // Deleting again is fine.
        s.delete(&k).unwrap();
        cleanup(&s);
    }

    #[test]
    fn range_scan_by_stream_and_format() {
        let s = store("scan");
        for i in 0..10 {
            s.put(&key("a", 1, i), &[1u8; 10]).unwrap();
            s.put(&key("a", 2, i), &[2u8; 20]).unwrap();
            s.put(&key("b", 1, i), &[3u8; 30]).unwrap();
        }
        let a1 = s.segments_of("a", FormatId(1));
        assert_eq!(a1.len(), 10);
        assert!(a1.windows(2).all(|w| w[0].segment_index < w[1].segment_index));
        assert_eq!(s.segments_of("a", FormatId(2)).len(), 10);
        assert_eq!(s.segments_of("c", FormatId(1)).len(), 0);
        assert_eq!(s.bytes_of("a", FormatId(2)).bytes(), 200);
        assert_eq!(s.len(), 30);
        cleanup(&s);
    }

    #[test]
    fn recovery_after_reopen() {
        let s = store("recover");
        let dir = s.dir();
        for i in 0..20 {
            s.put(&key("park", 0, i), &vec![i as u8; 1000]).unwrap();
        }
        s.delete(&key("park", 0, 3)).unwrap();
        s.sync().unwrap();
        drop(s);

        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 19);
        assert!(!reopened.contains(&key("park", 0, 3)));
        assert_eq!(reopened.get(&key("park", 0, 7)).unwrap().unwrap(), vec![7u8; 1000]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn stats_track_live_and_garbage() {
        let s = store("stats");
        let k = key("x", 1, 1);
        s.put(&k, &[0u8; 1000]).unwrap();
        s.put(&k, &[0u8; 1000]).unwrap(); // supersedes the first record
        let stats = s.stats();
        assert_eq!(stats.live_segments, 1);
        assert_eq!(stats.live_bytes, 1000);
        assert!(stats.disk_bytes > 2000);
        assert!(stats.garbage_ratio() > 0.3);
        assert_eq!(stats.writes, 2);
        cleanup(&s);
    }

    #[test]
    fn compaction_reclaims_space_and_preserves_data() {
        let s = store("compact");
        for i in 0..50 {
            s.put(&key("y", 1, i), &vec![9u8; 2000]).unwrap();
        }
        for i in 0..40 {
            s.delete(&key("y", 1, i)).unwrap();
        }
        let before = s.stats();
        assert!(before.garbage_ratio() > 0.5);
        let reclaimed = s.compact().unwrap();
        assert!(reclaimed > 0);
        let after = s.stats();
        assert_eq!(after.live_segments, 10);
        assert!(after.garbage_ratio() < 0.05, "garbage {:.2}", after.garbage_ratio());
        for i in 40..50 {
            assert_eq!(s.get(&key("y", 1, i)).unwrap().unwrap(), vec![9u8; 2000]);
        }
        cleanup(&s);
    }

    #[test]
    fn large_values_round_trip() {
        let s = store("large");
        // A couple of MB-sized segments, as VStore stores.
        let big = vec![0xABu8; 3 * 1024 * 1024];
        s.put(&key("big", 0, 0), &big).unwrap();
        s.put(&key("big", 0, 1), &big).unwrap();
        assert_eq!(s.get(&key("big", 0, 1)).unwrap().unwrap().len(), big.len());
        cleanup(&s);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        use std::sync::Arc;
        let s = Arc::new(store("concurrent"));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let k = key("stream", t, i);
                    s.put(&k, &vec![t as u8; 500]).unwrap();
                    assert_eq!(s.get(&k).unwrap().unwrap(), vec![t as u8; 500]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 200);
        cleanup(&s);
    }

    #[test]
    fn on_disk_cost_exceeds_value_length() {
        let k = key("jackson", 1, 5);
        assert!(SegmentStore::on_disk_cost(&k, 1000) > 1000);
    }
}
