//! The segment store: N independently locked, log-structured shards behind
//! a key-hash router, over a pluggable storage backend.
//!
//! Writers and readers hitting different shards never contend on a lock, so
//! put/get throughput scales with shards on a multi-core host; compaction
//! runs all shards in parallel. The shard count is fixed at creation and
//! persisted in a `SHARDS` meta file so reopening a store always routes keys
//! the way they were written. One shard reproduces the original single-lock
//! store exactly.
//!
//! All I/O flows through a [`StorageBackend`]: [`FsBackend`] (the default)
//! reproduces the pre-backend on-disk format byte for byte, and
//! [`MemBackend`] keeps everything in memory for tests and benchmarks.

use crate::backend::{BackendOptions, FsBackend, MemBackend, StorageBackend};
use crate::key::SegmentKey;
use crate::log::record_size;
use crate::shard::Shard;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vstore_sim::{scoped_map, DeterministicHasher};
use vstore_types::{ByteSize, FormatId, Result, VStoreError, DEFAULT_SHARDS};

/// Name of the meta file recording the store's shard count.
const SHARD_META_FILE: &str = "SHARDS";

/// Seed of the key-routing hash (any fixed value; must never change once
/// stores exist on disk).
const ROUTING_SEED: u64 = 0x5653_544F_5245; // "VSTORE"

/// Aggregate statistics about the store (or one shard of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of live segments.
    pub live_segments: usize,
    /// Total bytes of live segment values.
    pub live_bytes: u64,
    /// Total bytes occupied on disk by all value logs (including garbage).
    pub disk_bytes: u64,
    /// Number of value log files.
    pub log_files: usize,
    /// Records written since the store was opened (puts + deletes).
    pub writes: u64,
    /// Reads served since the store was opened.
    pub reads: u64,
}

impl StoreStats {
    /// Live bytes as a [`ByteSize`].
    #[must_use]
    pub fn live_size(&self) -> ByteSize {
        ByteSize(self.live_bytes)
    }

    /// Fraction of on-disk bytes that are garbage (superseded or deleted).
    #[must_use]
    pub fn garbage_ratio(&self) -> f64 {
        if self.disk_bytes == 0 {
            0.0
        } else {
            1.0 - (self.live_bytes as f64 / self.disk_bytes as f64).min(1.0)
        }
    }

    /// Accumulate another shard's statistics into this aggregate.
    ///
    /// # Examples
    ///
    /// ```
    /// use vstore_storage::StoreStats;
    /// let mut total = StoreStats::default();
    /// let shard = StoreStats { live_segments: 2, live_bytes: 100, ..Default::default() };
    /// total.accumulate(&shard);
    /// total.accumulate(&shard);
    /// assert_eq!(total.live_segments, 4);
    /// assert_eq!(total.live_size().bytes(), 200);
    /// ```
    pub fn accumulate(&mut self, other: &StoreStats) {
        // Saturating like `CacheStats::accumulate`: shard counters pinned at
        // the maximum must never panic the aggregate in debug builds.
        self.live_segments = self.live_segments.saturating_add(other.live_segments);
        self.live_bytes = self.live_bytes.saturating_add(other.live_bytes);
        self.disk_bytes = self.disk_bytes.saturating_add(other.disk_bytes);
        self.log_files = self.log_files.saturating_add(other.log_files);
        self.writes = self.writes.saturating_add(other.writes);
        self.reads = self.reads.saturating_add(other.reads);
    }
}

/// The sharded segment store.
///
/// All operations are internally synchronised per shard; a shared reference
/// can be used freely from many threads.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    backend: Arc<dyn StorageBackend>,
    shards: Vec<Shard>,
}

impl SegmentStore {
    /// Open (or create) a store rooted at `dir` on the local filesystem with
    /// the default shard count, rebuilding each shard's index by scanning
    /// its value logs.
    ///
    /// Reopening an existing store always uses the shard count it was
    /// created with (recorded in its `SHARDS` meta file).
    pub fn open(dir: impl AsRef<Path>) -> Result<SegmentStore> {
        Self::open_with_shards(dir, DEFAULT_SHARDS)
    }

    /// Open (or create) a filesystem store rooted at `dir` with `shards`
    /// shards.
    ///
    /// `shards` applies only when the store is created; an existing store
    /// keeps its recorded shard count (keys must keep routing to the shard
    /// they were written to).
    pub fn open_with_shards(dir: impl AsRef<Path>, shards: usize) -> Result<SegmentStore> {
        let backend: Arc<dyn StorageBackend> = Arc::new(FsBackend::new(dir)?);
        Self::open_with_backend(backend, shards)
    }

    /// Open (or create) a store over an arbitrary [`StorageBackend`].
    ///
    /// This is the constructor every other `open_*` funnels into; the
    /// `SHARDS` meta handling and the recovery scan are identical for every
    /// backend.
    pub fn open_with_backend(
        backend: Arc<dyn StorageBackend>,
        shards: usize,
    ) -> Result<SegmentStore> {
        let shard_count = match backend.read_all(SHARD_META_FILE)? {
            Some(contents) => String::from_utf8_lossy(&contents)
                .trim()
                .parse::<usize>()
                .map_err(|_| {
                    VStoreError::corruption(format!(
                        "invalid shard meta file in {}",
                        backend.describe()
                    ))
                })?,
            None => {
                // No meta file. Refuse namespaces that already hold store
                // data — value logs at the root (the pre-shard layout) or
                // shard directories whose meta file was lost — rather than
                // guessing a shard count and misrouting every existing key.
                let mut legacy_logs = false;
                let mut orphan_shards = false;
                for name in backend.list("")? {
                    if crate::log::LogFile::parse_id(&name).is_some() {
                        legacy_logs = true;
                    }
                    // Only names the store itself would have created
                    // (`shard-<digits>`) count as orphans; an unrelated
                    // file like `shard-backup.tar` must not block creation.
                    let is_shard_name = name.strip_prefix("shard-").is_some_and(|rest| {
                        !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())
                    });
                    if is_shard_name {
                        orphan_shards = true;
                    }
                }
                if legacy_logs {
                    return Err(VStoreError::corruption(format!(
                        "{} holds un-sharded value logs but no SHARDS meta file",
                        backend.describe()
                    )));
                }
                if orphan_shards {
                    return Err(VStoreError::corruption(format!(
                        "{} holds shard directories but no SHARDS meta file; \
                         refusing to guess the shard count",
                        backend.describe()
                    )));
                }
                let count = shards.max(1);
                backend.write_all(SHARD_META_FILE, format!("{count}\n").as_bytes())?;
                count
            }
        };
        if shard_count == 0 {
            return Err(VStoreError::corruption(
                "shard meta file records zero shards",
            ));
        }
        let shards = (0..shard_count)
            .map(|i| Shard::open(Arc::clone(&backend), format!("shard-{i:03}")))
            .collect::<Result<Vec<_>>>()?;
        Ok(SegmentStore {
            dir: PathBuf::from(backend.describe()),
            backend,
            shards,
        })
    }

    /// Open a store over the backend chosen by `options`, rooted at `dir`
    /// (the root is ignored by the in-memory backend).
    pub fn open_with_options(
        dir: impl AsRef<Path>,
        options: BackendOptions,
        shards: usize,
    ) -> Result<SegmentStore> {
        let backend = options.create(dir.as_ref())?;
        Self::open_with_backend(backend, shards)
    }

    /// Open a fresh in-memory store ([`MemBackend`]) with `shards` shards.
    /// Nothing survives the store being dropped.
    pub fn open_mem_with_shards(shards: usize) -> Result<SegmentStore> {
        Self::open_with_backend(Arc::new(MemBackend::new()), shards)
    }

    /// Open a filesystem store in a fresh temporary directory (tests,
    /// examples and benchmarks). The directory is *not* cleaned up
    /// automatically.
    pub fn open_temp(tag: &str) -> Result<SegmentStore> {
        Self::open_temp_with_shards(tag, DEFAULT_SHARDS)
    }

    /// [`open_temp`](Self::open_temp) with an explicit shard count.
    pub fn open_temp_with_shards(tag: &str, shards: usize) -> Result<SegmentStore> {
        SegmentStore::open_with_shards(Self::temp_dir(tag), shards)
    }

    /// A fresh, collision-resistant directory under the system temp dir for
    /// a store tagged `tag` (used by every `open_temp` flavour, including
    /// the facade's).
    pub fn temp_dir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        std::env::temp_dir().join(format!("vstore-{tag}-{}-{nanos}", std::process::id()))
    }

    /// The root directory of the store (`<mem>` for the in-memory backend).
    pub fn dir(&self) -> PathBuf {
        self.dir.clone()
    }

    /// The storage backend behind this store.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to.
    fn shard_of(&self, key: &SegmentKey) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    /// Index of the shard a key routes to: a deterministic hash of the full
    /// key, so consecutive segments of one stream spread across shards and
    /// parallel writers rarely collide.
    pub fn shard_index(&self, key: &SegmentKey) -> usize {
        let hash = DeterministicHasher::new(ROUTING_SEED)
            .mix_str(&key.stream)
            .mix(u64::from(key.format.0))
            .mix(key.segment_index)
            .value();
        // vstore-lint: allow(checked-cast) — the remainder is < shards.len(), a usize
        (hash % self.shards.len() as u64) as usize
    }

    /// Store a segment, replacing any previous value under the same key.
    pub fn put(&self, key: &SegmentKey, value: &[u8]) -> Result<()> {
        self.shard_of(key).put(key, value)
    }

    /// Fetch a segment. Returns `Ok(None)` when the key does not exist.
    pub fn get(&self, key: &SegmentKey) -> Result<Option<Vec<u8>>> {
        self.shard_of(key).get(key)
    }

    /// `true` if the key exists.
    pub fn contains(&self, key: &SegmentKey) -> bool {
        self.shard_of(key).contains(key)
    }

    /// Length in bytes of the key's live value, from the index alone (no
    /// backend read). `None` when the key does not exist.
    pub fn value_len(&self, key: &SegmentKey) -> Option<u64> {
        self.shard_of(key).value_len(key)
    }

    /// Delete a segment. Deleting a missing key is a no-op.
    pub fn delete(&self, key: &SegmentKey) -> Result<()> {
        self.shard_of(key).delete(key)
    }

    /// Backend name of a segment's metadata sidecar: a `meta/` namespace
    /// outside every shard directory (the orphan check at open only rejects
    /// `shard-NNN` entries and legacy root logs, so a reopen is safe), keyed
    /// by the hex of the encoded segment key so arbitrary stream names stay
    /// path-safe on every backend.
    fn meta_name(key: &SegmentKey) -> String {
        use std::fmt::Write as _;
        let encoded = key.encode();
        let mut name = String::with_capacity(5 + encoded.len() * 2);
        name.push_str("meta/");
        for byte in encoded {
            let _ = write!(name, "{byte:02x}");
        }
        name
    }

    /// Store a segment's metadata sidecar, replacing any previous sidecar
    /// under the same key. Sidecars live outside the shards — they do not
    /// count towards [`len`](Self::len), statistics or capacity planning —
    /// but go through the same [`StorageBackend`] as segment data, so they
    /// survive reopen and follow the store across backends. On a tiered
    /// backend sidecars are meta files and therefore always land hot, which
    /// keeps them readable while their segment is demoted to cold.
    pub fn put_segment_meta(&self, key: &SegmentKey, bytes: &[u8]) -> Result<()> {
        self.backend.write_all(&Self::meta_name(key), bytes)
    }

    /// Fetch a segment's metadata sidecar. Returns `Ok(None)` when no
    /// sidecar exists for the key.
    pub fn get_segment_meta(&self, key: &SegmentKey) -> Result<Option<Vec<u8>>> {
        self.backend.read_all(&Self::meta_name(key))
    }

    /// Delete a segment's metadata sidecar. Deleting a missing sidecar is a
    /// no-op on every backend.
    pub fn delete_segment_meta(&self, key: &SegmentKey) -> Result<()> {
        self.backend.remove(&Self::meta_name(key))
    }

    /// All keys for one `(stream, format)` pair, in segment order, merged
    /// across shards.
    pub fn segments_of(&self, stream: &str, format: FormatId) -> Vec<SegmentKey> {
        let mut keys: Vec<SegmentKey> = self
            .shards
            .iter()
            .flat_map(|s| s.segments_of(stream, format))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// All live keys, in key order, merged across shards.
    pub fn keys(&self) -> Vec<SegmentKey> {
        let mut keys: Vec<SegmentKey> = self.shards.iter().flat_map(|s| s.keys()).collect();
        keys.sort_unstable();
        keys
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` when no live segment exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of live values stored for one `(stream, format)` pair.
    pub fn bytes_of(&self, stream: &str, format: FormatId) -> ByteSize {
        ByteSize(self.shards.iter().map(|s| s.bytes_of(stream, format)).sum())
    }

    /// Aggregate store statistics (the sum of every shard's statistics).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            total.accumulate(&shard.stats());
        }
        total
    }

    /// Per-shard statistics, in shard order.
    ///
    /// # Examples
    ///
    /// ```
    /// use vstore_storage::{SegmentKey, SegmentStore, StoreStats};
    /// use vstore_types::FormatId;
    /// let store = SegmentStore::open_mem_with_shards(4)?;
    /// store.put(&SegmentKey::new("cam", FormatId(1), 0), b"bytes")?;
    /// let per_shard = store.shard_stats();
    /// assert_eq!(per_shard.len(), 4);
    /// // Summing the shards reproduces the aggregate exactly.
    /// let mut summed = StoreStats::default();
    /// per_shard.iter().for_each(|s| summed.accumulate(s));
    /// assert_eq!(summed, store.stats());
    /// # Ok::<(), vstore_types::VStoreError>(())
    /// ```
    #[must_use]
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Flush and fsync every shard's active log.
    pub fn sync(&self) -> Result<()> {
        for shard in &self.shards {
            shard.sync()?;
        }
        Ok(())
    }

    /// Compact every shard — rewriting live records into fresh log files and
    /// deleting the old ones — running shards in parallel. Returns the total
    /// number of bytes reclaimed.
    pub fn compact(&self) -> Result<u64> {
        let reclaimed = scoped_map(
            self.shards.iter().collect::<Vec<_>>(),
            self.shards.len(),
            |_, shard| shard.compact(),
        );
        let mut total = 0u64;
        for r in reclaimed {
            total += r?;
        }
        Ok(total)
    }

    /// Approximate on-disk cost of storing a value of `value_len` bytes under
    /// `key` (framing included). Used by capacity planning.
    pub fn on_disk_cost(key: &SegmentKey, value_len: usize) -> u64 {
        record_size(key.encode().len(), value_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn store(tag: &str) -> SegmentStore {
        SegmentStore::open_temp(tag).unwrap()
    }

    fn cleanup(store: &SegmentStore) {
        fs::remove_dir_all(store.dir()).ok();
    }

    fn key(stream: &str, format: u32, index: u64) -> SegmentKey {
        SegmentKey::new(stream, FormatId(format), index)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let s = store("crud");
        let k = key("jackson", 1, 0);
        assert_eq!(s.get(&k).unwrap(), None);
        s.put(&k, b"segment-bytes").unwrap();
        assert_eq!(s.get(&k).unwrap().unwrap(), b"segment-bytes");
        assert!(s.contains(&k));
        // Overwrite.
        s.put(&k, b"new-bytes").unwrap();
        assert_eq!(s.get(&k).unwrap().unwrap(), b"new-bytes");
        // Delete.
        s.delete(&k).unwrap();
        assert_eq!(s.get(&k).unwrap(), None);
        assert!(!s.contains(&k));
        // Deleting again is fine.
        s.delete(&k).unwrap();
        cleanup(&s);
    }

    #[test]
    fn segment_meta_round_trip_and_reopen() {
        let s = store("meta-crud");
        let dir = s.dir();
        let k = key("jackson stream/with:odd chars", 1, 7);
        assert_eq!(s.get_segment_meta(&k).unwrap(), None);
        s.put(&k, b"segment-bytes").unwrap();
        s.put_segment_meta(&k, b"sidecar-v1").unwrap();
        assert_eq!(s.get_segment_meta(&k).unwrap().unwrap(), b"sidecar-v1");
        // Sidecars never count as segments.
        assert_eq!(s.len(), 1);
        // Overwrite.
        s.put_segment_meta(&k, b"sidecar-v2").unwrap();
        assert_eq!(s.get_segment_meta(&k).unwrap().unwrap(), b"sidecar-v2");
        s.sync().unwrap();
        drop(s);

        // The sidecar survives a reopen and does not trip the orphan check.
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(
            reopened.get_segment_meta(&k).unwrap().unwrap(),
            b"sidecar-v2"
        );
        reopened.delete_segment_meta(&k).unwrap();
        assert_eq!(reopened.get_segment_meta(&k).unwrap(), None);
        // Deleting a missing sidecar is a no-op.
        reopened.delete_segment_meta(&k).unwrap();
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn range_scan_by_stream_and_format() {
        let s = store("scan");
        for i in 0..10 {
            s.put(&key("a", 1, i), &[1u8; 10]).unwrap();
            s.put(&key("a", 2, i), &[2u8; 20]).unwrap();
            s.put(&key("b", 1, i), &[3u8; 30]).unwrap();
        }
        let a1 = s.segments_of("a", FormatId(1));
        assert_eq!(a1.len(), 10);
        assert!(a1
            .windows(2)
            .all(|w| w[0].segment_index < w[1].segment_index));
        assert_eq!(s.segments_of("a", FormatId(2)).len(), 10);
        assert_eq!(s.segments_of("c", FormatId(1)).len(), 0);
        assert_eq!(s.bytes_of("a", FormatId(2)).bytes(), 200);
        assert_eq!(s.len(), 30);
        cleanup(&s);
    }

    #[test]
    fn recovery_after_reopen() {
        let s = store("recover");
        let dir = s.dir();
        for i in 0..20 {
            s.put(&key("park", 0, i), &vec![i as u8; 1000]).unwrap();
        }
        s.delete(&key("park", 0, 3)).unwrap();
        s.sync().unwrap();
        drop(s);

        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 19);
        assert!(!reopened.contains(&key("park", 0, 3)));
        assert_eq!(
            reopened.get(&key("park", 0, 7)).unwrap().unwrap(),
            vec![7u8; 1000]
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_after_reopen_on_shared_mem_backend() {
        // The mem backend recovers through the same scan path as the fs
        // backend when the backend outlives the store handle.
        let backend: Arc<dyn StorageBackend> = Arc::new(crate::backend::MemBackend::new());
        let s = SegmentStore::open_with_backend(Arc::clone(&backend), 4).unwrap();
        for i in 0..20 {
            s.put(&key("park", 0, i), &vec![i as u8; 1000]).unwrap();
        }
        s.delete(&key("park", 0, 3)).unwrap();
        s.sync().unwrap();
        drop(s);

        let reopened = SegmentStore::open_with_backend(backend, 16).unwrap();
        assert_eq!(reopened.shard_count(), 4, "recorded shard count wins");
        assert_eq!(reopened.len(), 19);
        assert!(!reopened.contains(&key("park", 0, 3)));
        assert_eq!(
            reopened.get(&key("park", 0, 7)).unwrap().unwrap(),
            vec![7u8; 1000]
        );
    }

    #[test]
    fn stats_track_live_and_garbage() {
        let s = store("stats");
        let k = key("x", 1, 1);
        s.put(&k, &[0u8; 1000]).unwrap();
        s.put(&k, &[0u8; 1000]).unwrap(); // supersedes the first record
        let stats = s.stats();
        assert_eq!(stats.live_segments, 1);
        assert_eq!(stats.live_bytes, 1000);
        assert!(stats.disk_bytes > 2000);
        assert!(stats.garbage_ratio() > 0.3);
        assert_eq!(stats.writes, 2);
        cleanup(&s);
    }

    #[test]
    fn compaction_reclaims_space_and_preserves_data() {
        for s in [
            store("compact"),
            SegmentStore::open_mem_with_shards(DEFAULT_SHARDS).unwrap(),
        ] {
            for i in 0..50 {
                s.put(&key("y", 1, i), &vec![9u8; 2000]).unwrap();
            }
            for i in 0..40 {
                s.delete(&key("y", 1, i)).unwrap();
            }
            let before = s.stats();
            assert!(before.garbage_ratio() > 0.5);
            let reclaimed = s.compact().unwrap();
            assert!(reclaimed > 0);
            let after = s.stats();
            assert_eq!(after.live_segments, 10);
            assert!(
                after.garbage_ratio() < 0.05,
                "garbage {:.2}",
                after.garbage_ratio()
            );
            for i in 40..50 {
                assert_eq!(s.get(&key("y", 1, i)).unwrap().unwrap(), vec![9u8; 2000]);
            }
            cleanup(&s);
        }
    }

    #[test]
    fn large_values_round_trip() {
        let s = store("large");
        // A couple of MB-sized segments, as VStore stores.
        let big = vec![0xABu8; 3 * 1024 * 1024];
        s.put(&key("big", 0, 0), &big).unwrap();
        s.put(&key("big", 0, 1), &big).unwrap();
        assert_eq!(s.get(&key("big", 0, 1)).unwrap().unwrap().len(), big.len());
        cleanup(&s);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        use std::sync::Arc;
        let s = Arc::new(store("concurrent"));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let k = key("stream", t, i);
                    s.put(&k, &vec![t as u8; 500]).unwrap();
                    assert_eq!(s.get(&k).unwrap().unwrap(), vec![t as u8; 500]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 200);
        cleanup(&s);
    }

    #[test]
    fn on_disk_cost_exceeds_value_length() {
        let k = key("jackson", 1, 5);
        assert!(SegmentStore::on_disk_cost(&k, 1000) > 1000);
    }

    // ---------------- sharding-specific behaviour ----------------

    #[test]
    fn single_shard_store_works_and_reports_one_shard() {
        let s = SegmentStore::open_temp_with_shards("one-shard", 1).unwrap();
        assert_eq!(s.shard_count(), 1);
        for i in 0..20 {
            s.put(&key("solo", 1, i), &[1u8; 64]).unwrap();
        }
        assert_eq!(s.len(), 20);
        assert_eq!(s.shard_stats().len(), 1);
        assert_eq!(s.shard_stats()[0].live_segments, 20);
        cleanup(&s);
    }

    #[test]
    fn keys_spread_across_shards() {
        let s = SegmentStore::open_temp_with_shards("spread", 8).unwrap();
        for i in 0..200 {
            s.put(&key("spread", 1, i), &[0u8; 16]).unwrap();
        }
        let per_shard = s.shard_stats();
        let populated = per_shard.iter().filter(|st| st.live_segments > 0).count();
        assert!(populated >= 6, "only {populated}/8 shards populated");
        // No shard holds more than half the keys (uniform-ish routing).
        assert!(per_shard.iter().all(|st| st.live_segments < 100));
        cleanup(&s);
    }

    #[test]
    fn aggregate_stats_equal_sum_of_shard_stats() {
        let s = SegmentStore::open_temp_with_shards("agg", 4).unwrap();
        for i in 0..60 {
            s.put(&key("agg", 1, i), &vec![7u8; 100 + i as usize])
                .unwrap();
        }
        for i in 0..10 {
            s.delete(&key("agg", 1, i)).unwrap();
        }
        let _ = s.get(&key("agg", 1, 30)).unwrap();
        let mut summed = StoreStats::default();
        for shard in s.shard_stats() {
            summed.accumulate(&shard);
        }
        assert_eq!(summed, s.stats());
        assert_eq!(summed.live_segments, 50);
        cleanup(&s);
    }

    #[test]
    fn shard_routing_is_stable_across_reopen() {
        let s = SegmentStore::open_temp_with_shards("stable-routing", 5).unwrap();
        let dir = s.dir();
        let routed: Vec<usize> = (0..50)
            .map(|i| s.shard_index(&key("stable", 2, i)))
            .collect();
        for i in 0..50 {
            s.put(&key("stable", 2, i), &[3u8; 32]).unwrap();
        }
        s.sync().unwrap();
        drop(s);
        // Reopen with a *different* requested count: the recorded count wins.
        let reopened = SegmentStore::open_with_shards(&dir, 16).unwrap();
        assert_eq!(reopened.shard_count(), 5);
        for (i, &expected) in routed.iter().enumerate() {
            assert_eq!(reopened.shard_index(&key("stable", 2, i as u64)), expected);
            assert!(reopened.contains(&key("stable", 2, i as u64)));
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unsharded_legacy_directory_is_rejected_not_shadowed() {
        let s = SegmentStore::open_temp_with_shards("legacy", 1).unwrap();
        let dir = s.dir();
        s.put(&key("legacy", 1, 0), &[1u8; 64]).unwrap();
        s.sync().unwrap();
        drop(s);
        // Fake the pre-shard layout: logs at the root, no meta file.
        let shard_dir = dir.join("shard-000");
        for entry in fs::read_dir(&shard_dir).unwrap() {
            let entry = entry.unwrap();
            fs::rename(entry.path(), dir.join(entry.file_name())).unwrap();
        }
        fs::remove_dir(shard_dir).unwrap();
        fs::remove_file(dir.join("SHARDS")).unwrap();
        let err = SegmentStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("un-sharded"), "got: {err}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unrelated_shard_prefixed_files_do_not_block_creation() {
        // Only `shard-<digits>` names count as orphaned store data; a stray
        // user file must not make a fresh directory unopenable.
        let dir = SegmentStore::temp_dir("stray-file");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("shard-backup.tar"), b"not a shard").unwrap();
        let s = SegmentStore::open_with_shards(&dir, 2).unwrap();
        s.put(&key("stray", 1, 0), &[1u8; 8]).unwrap();
        assert_eq!(s.len(), 1);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shard_dirs_without_meta_file_are_rejected_not_reseeded() {
        let s = SegmentStore::open_temp_with_shards("orphan", 5).unwrap();
        let dir = s.dir();
        s.put(&key("orphan", 1, 0), &[1u8; 64]).unwrap();
        s.sync().unwrap();
        drop(s);
        fs::remove_file(dir.join("SHARDS")).unwrap();
        let err = SegmentStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("refusing to guess"), "got: {err}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parallel_compaction_reclaims_across_all_shards() {
        let s = SegmentStore::open_temp_with_shards("par-compact", 8).unwrap();
        for i in 0..160 {
            s.put(&key("pc", 1, i), &vec![5u8; 4000]).unwrap();
        }
        for i in 0..160 {
            s.put(&key("pc", 1, i), &vec![6u8; 3000]).unwrap(); // supersede everything
        }
        let reclaimed = s.compact().unwrap();
        assert!(reclaimed > 160 * 3000, "reclaimed only {reclaimed} bytes");
        for shard in s.shard_stats() {
            assert!(
                shard.garbage_ratio() < 0.05,
                "shard garbage {:.2}",
                shard.garbage_ratio()
            );
        }
        for i in 0..160 {
            assert_eq!(s.get(&key("pc", 1, i)).unwrap().unwrap(), vec![6u8; 3000]);
        }
        cleanup(&s);
    }

    #[test]
    fn mem_store_reports_mem_dir_and_empty_state() {
        let s = SegmentStore::open_mem_with_shards(2).unwrap();
        assert_eq!(s.dir(), PathBuf::from("<mem>"));
        assert!(s.is_empty());
        assert_eq!(s.shard_count(), 2);
        s.put(&key("m", 1, 0), b"bytes").unwrap();
        assert_eq!(s.get(&key("m", 1, 0)).unwrap().unwrap(), b"bytes");
    }
}
