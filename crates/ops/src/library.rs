//! The operator library: instantiation, execution, accuracy evaluation and
//! consumption-speed queries — the interface VStore's profiler expects from
//! a query engine (§4.1).

use crate::cost::ConsumptionCostModel;
use crate::operator::{Operator, OperatorOutput};
use crate::ops::{
    ColorOperator, ContourOperator, DiffOperator, FullNNOperator, LicenseOperator, MotionOperator,
    OcrOperator, OpticalFlowOperator, SpecializedNNOperator,
};
use crate::scoring::{score_against_reference, ScoreReport};
use vstore_codec::VideoFrame;
use vstore_types::{Fidelity, OperatorKind, Speed};

/// The operator library exposed to VStore.
#[derive(Debug, Clone)]
pub struct OperatorLibrary {
    cost_model: ConsumptionCostModel,
}

impl OperatorLibrary {
    /// Library running on the paper's testbed.
    pub fn paper_testbed() -> Self {
        OperatorLibrary {
            cost_model: ConsumptionCostModel::paper_testbed(),
        }
    }

    /// Library with a custom cost model.
    pub fn new(cost_model: ConsumptionCostModel) -> Self {
        OperatorLibrary { cost_model }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &ConsumptionCostModel {
        &self.cost_model
    }

    /// Instantiate an operator.
    pub fn instantiate(&self, kind: OperatorKind) -> Box<dyn Operator> {
        match kind {
            OperatorKind::Diff => Box::new(DiffOperator::new()),
            OperatorKind::SpecializedNN => Box::new(SpecializedNNOperator),
            OperatorKind::FullNN => Box::new(FullNNOperator),
            OperatorKind::Motion => Box::new(MotionOperator),
            OperatorKind::License => Box::new(LicenseOperator),
            OperatorKind::Ocr => Box::new(OcrOperator),
            OperatorKind::OpticalFlow => Box::new(OpticalFlowOperator),
            OperatorKind::Color => Box::new(ColorOperator::default()),
            OperatorKind::Contour => Box::new(ContourOperator::default()),
        }
    }

    /// Run an operator over a clip of frames.
    pub fn run(&self, kind: OperatorKind, frames: &[VideoFrame]) -> OperatorOutput {
        self.instantiate(kind).run(frames)
    }

    /// Evaluate the accuracy of an operator consuming `test_frames` against
    /// its own output on `reference_frames` (the same clip at the ingestion
    /// fidelity, full sampling).
    pub fn evaluate_accuracy(
        &self,
        kind: OperatorKind,
        reference_frames: &[VideoFrame],
        test_frames: &[VideoFrame],
    ) -> ScoreReport {
        let reference = self.run(kind, reference_frames);
        let test = self.run(kind, test_frames);
        score_against_reference(&reference, &test)
    }

    /// The consumption speed (×realtime) of an operator on frames of the
    /// given fidelity, from the calibrated cost model.
    pub fn consumption_speed(&self, kind: OperatorKind, fidelity: &Fidelity) -> Speed {
        self.cost_model.consumption_speed(kind, fidelity)
    }

    /// Compute seconds charged for consuming `video_seconds` of content.
    pub fn compute_seconds(
        &self,
        kind: OperatorKind,
        fidelity: &Fidelity,
        video_seconds: f64,
    ) -> f64 {
        self.cost_model
            .compute_seconds(kind, fidelity, video_seconds)
    }
}

impl Default for OperatorLibrary {
    fn default() -> Self {
        OperatorLibrary::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_codec::frame::materialize_clip;
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_types::{CropFactor, FrameSampling, ImageQuality, Resolution};

    fn clip(dataset: Dataset, fidelity: Fidelity, frames: u32) -> Vec<VideoFrame> {
        materialize_clip(&VideoSource::new(dataset).clip(0, frames), fidelity)
    }

    #[test]
    fn all_operators_instantiate_with_matching_kind() {
        let lib = OperatorLibrary::paper_testbed();
        for kind in OperatorKind::ALL {
            assert_eq!(lib.instantiate(kind).kind(), kind);
        }
    }

    #[test]
    fn accuracy_is_one_at_ingestion_fidelity() {
        let lib = OperatorLibrary::paper_testbed();
        let reference = clip(Dataset::Jackson, Fidelity::INGESTION, 150);
        for kind in [
            OperatorKind::FullNN,
            OperatorKind::Motion,
            OperatorKind::License,
        ] {
            let report = lib.evaluate_accuracy(kind, &reference, &reference);
            assert_eq!(report.f1, 1.0, "{kind:?} should be perfect against itself");
        }
    }

    #[test]
    fn accuracy_degrades_with_fidelity_for_detection_operators() {
        let lib = OperatorLibrary::paper_testbed();
        let reference = clip(Dataset::Dashcam, Fidelity::INGESTION, 300);
        let mid = Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R400,
            FrameSampling::S1_2,
        );
        let low = Fidelity::new(
            ImageQuality::Worst,
            CropFactor::C100,
            Resolution::R100,
            FrameSampling::S1_30,
        );
        for kind in [
            OperatorKind::License,
            OperatorKind::Ocr,
            OperatorKind::SpecializedNN,
        ] {
            let f_mid = lib
                .evaluate_accuracy(kind, &reference, &clip(Dataset::Dashcam, mid, 300))
                .f1;
            let f_low = lib
                .evaluate_accuracy(kind, &reference, &clip(Dataset::Dashcam, low, 300))
                .f1;
            assert!(
                f_mid >= f_low,
                "{kind:?}: mid fidelity {f_mid} should be at least low fidelity {f_low}"
            );
            assert!(f_low < 1.0, "{kind:?}: low fidelity should not be perfect");
        }
    }

    #[test]
    fn accuracy_monotone_in_resolution_for_nn() {
        let lib = OperatorLibrary::paper_testbed();
        let reference = clip(Dataset::Jackson, Fidelity::INGESTION, 300);
        let mut prev = -1.0;
        for res in [
            Resolution::R100,
            Resolution::R200,
            Resolution::R400,
            Resolution::R600,
            Resolution::R720,
        ] {
            let fid = Fidelity::new(
                ImageQuality::Good,
                CropFactor::C100,
                res,
                FrameSampling::Full,
            );
            let f1 = lib
                .evaluate_accuracy(
                    OperatorKind::FullNN,
                    &reference,
                    &clip(Dataset::Jackson, fid, 300),
                )
                .f1;
            assert!(
                f1 >= prev - 0.02,
                "NN accuracy dropped from {prev} to {f1} when raising resolution to {res}"
            );
            prev = f1;
        }
    }

    #[test]
    fn consumption_speed_matches_cost_model() {
        let lib = OperatorLibrary::paper_testbed();
        let fid = Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::S1_6,
        );
        let direct = lib
            .cost_model()
            .consumption_speed(OperatorKind::License, &fid);
        assert_eq!(
            lib.consumption_speed(OperatorKind::License, &fid).factor(),
            direct.factor()
        );
        assert!(lib.compute_seconds(OperatorKind::License, &fid, 8.0) > 0.0);
    }
}
