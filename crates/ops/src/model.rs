//! The fidelity-dependent detection model shared by the object-recognition
//! operators.
//!
//! For an object `o` in frame `t`, operator `op` detects `o` iff
//!
//! ```text
//! p(op, o, fidelity)  >  u(op, o, t)
//! ```
//!
//! where `u` is a deterministic pseudo-random draw (fixed across fidelities)
//! and `p` is the detection probability:
//!
//! ```text
//! p = salience_weight(o) · sigmoid((h_px − h50) / (h50/3)) · retention^γ
//! ```
//!
//! * `h_px` — the object's (or plate's) apparent height in pixels at the
//!   frame's resolution; richer resolution ⇒ larger `h_px` ⇒ higher `p`.
//! * `h50` — the operator's size requirement: the apparent height at which
//!   detection reaches 50 %. The full NN tolerates small objects poorly
//!   compared to a specialised NN? No — the opposite: the cheap specialised
//!   NN needs larger, clearer objects than the full NN, and the plate/OCR
//!   operators need the *plate*, a small sub-region, to be resolvable.
//! * `retention^γ` — image-quality sensitivity; γ is large for License/OCR
//!   (fine textures) and small for Motion/Diff (coarse blobs). This is the
//!   source of the quality×resolution interplay §2.4 describes.
//!
//! Because `p` is monotone in every fidelity knob and `u` is fixed, the set
//! of detections at a poorer fidelity is a subset of the set at a richer
//! fidelity — observation O1 holds by construction.

use vstore_datasets::SceneObject;
use vstore_sim::DeterministicHasher;
use vstore_types::{Fidelity, OperatorKind};

/// Per-operator parameters of the detection model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionParams {
    /// Apparent pixel height at which detection probability reaches 50 %.
    pub h50: f64,
    /// Image-quality exponent γ.
    pub quality_exponent: f64,
    /// `true` when the size requirement applies to the licence plate rather
    /// than the whole object.
    pub plate_based: bool,
    /// Minimum object speed (frame-widths/second) for the operator to care
    /// about the object at all (Motion/Opflow ignore parked objects).
    pub min_speed: f32,
}

impl DetectionParams {
    /// Parameters for one operator.
    pub fn for_operator(kind: OperatorKind) -> DetectionParams {
        match kind {
            OperatorKind::Diff => DetectionParams {
                h50: 4.0,
                quality_exponent: 0.25,
                plate_based: false,
                min_speed: 0.0,
            },
            OperatorKind::SpecializedNN => DetectionParams {
                h50: 30.0,
                quality_exponent: 0.8,
                plate_based: false,
                min_speed: 0.0,
            },
            OperatorKind::FullNN => DetectionParams {
                h50: 55.0,
                quality_exponent: 0.5,
                plate_based: false,
                min_speed: 0.0,
            },
            OperatorKind::Motion => DetectionParams {
                h50: 6.0,
                quality_exponent: 0.3,
                plate_based: false,
                min_speed: 0.05,
            },
            OperatorKind::License => DetectionParams {
                h50: 6.0,
                quality_exponent: 1.6,
                plate_based: true,
                min_speed: 0.0,
            },
            OperatorKind::Ocr => DetectionParams {
                h50: 9.0,
                quality_exponent: 2.2,
                plate_based: true,
                min_speed: 0.0,
            },
            OperatorKind::OpticalFlow => DetectionParams {
                h50: 10.0,
                quality_exponent: 0.5,
                plate_based: false,
                min_speed: 0.03,
            },
            OperatorKind::Color => DetectionParams {
                h50: 12.0,
                quality_exponent: 1.8,
                plate_based: false,
                min_speed: 0.0,
            },
            OperatorKind::Contour => DetectionParams {
                h50: 8.0,
                quality_exponent: 0.6,
                plate_based: false,
                min_speed: 0.0,
            },
        }
    }
}

/// Logistic function.
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Apparent height of an object (normalised height `h`) in pixels at a
/// resolution, measured on the richness scale: `h · 0.75·√pixels`, which for
/// 16:9 resolutions equals the true pixel height and is monotone in the
/// resolution's pixel count for every aspect ratio (so that accuracy stays
/// monotone along the richer-than order).
fn apparent_height(normalised_height: f32, fidelity: &Fidelity) -> f64 {
    f64::from(normalised_height) * 0.75 * (fidelity.resolution.pixels() as f64).sqrt()
}

/// The detection probability of `object` for `kind` at the fidelity the
/// containing frame was materialised at (`signal_retention` is the frame's
/// compound retention, normally `fidelity.quality.signal_retention()`).
pub fn detection_probability(
    kind: OperatorKind,
    object: &SceneObject,
    fidelity: &Fidelity,
    signal_retention: f64,
) -> f64 {
    let params = DetectionParams::for_operator(kind);
    if object.speed.abs() < params.min_speed {
        return 0.0;
    }
    if params.plate_based && !object.has_visible_plate() {
        return 0.0;
    }
    let h_px = if params.plate_based {
        apparent_height(object.bbox.h, fidelity) * 0.12
    } else {
        apparent_height(object.bbox.h, fidelity)
    };
    let size_factor = sigmoid((h_px - params.h50) / (params.h50 / 3.0));
    let quality_factor = signal_retention
        .clamp(0.0, 1.0)
        .powf(params.quality_exponent);
    let salience_weight = 0.55 + 0.45 * f64::from(object.salience);
    (salience_weight * size_factor * quality_factor).clamp(0.0, 1.0)
}

/// The deterministic draw compared against the detection probability. One
/// draw per `(operator, object, frame)`, identical across fidelities.
pub fn detection_draw(kind: OperatorKind, object_id: u64, source_index: u64) -> f64 {
    DeterministicHasher::new(0x00D5_7EC7)
        .mix(kind as u64)
        .mix(object_id)
        .mix(source_index)
        .unit()
}

/// `true` if the operator detects the object in this frame at this fidelity.
pub fn detects(
    kind: OperatorKind,
    object: &SceneObject,
    fidelity: &Fidelity,
    signal_retention: f64,
    source_index: u64,
) -> bool {
    detection_probability(kind, object, fidelity, signal_retention)
        > detection_draw(kind, object.id, source_index)
}

/// Apparent height in pixels of an object's licence plate at a fidelity, on
/// the same monotone richness scale used by [`detection_probability`].
pub fn plate_apparent_height(object: &SceneObject, fidelity: &Fidelity) -> f64 {
    apparent_height(object.bbox.h, fidelity) * 0.12
}

/// Per-character OCR success probability for a plate of apparent height
/// `plate_px` at the given retention.
pub fn ocr_char_probability(plate_px: f64, signal_retention: f64) -> f64 {
    let size = sigmoid((plate_px - 11.0) / 3.0);
    let quality = signal_retention.clamp(0.0, 1.0).powf(2.0);
    (0.25 + 0.75 * size * quality).clamp(0.0, 1.0)
}

/// Deterministic draw for one OCR character.
pub fn ocr_char_draw(object_id: u64, source_index: u64, char_index: usize) -> f64 {
    DeterministicHasher::new(0x000C_12AA)
        .mix(object_id)
        .mix(source_index)
        .mix(char_index as u64)
        .unit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_datasets::{BoundingBox, ObjectClass, ObjectColor, PlateText};
    use vstore_types::{CropFactor, FrameSampling, ImageQuality, Resolution};

    fn car(height: f32, salience: f32) -> SceneObject {
        SceneObject {
            id: 42,
            class: ObjectClass::Vehicle {
                plate_visible: true,
            },
            bbox: BoundingBox::new(0.4, 0.4, height * 1.8, height),
            color: ObjectColor::Blue,
            plate: Some(PlateText::from_hash(7)),
            salience,
            speed: 0.2,
        }
    }

    fn fid(q: ImageQuality, r: Resolution) -> Fidelity {
        Fidelity::new(q, CropFactor::C100, r, FrameSampling::Full)
    }

    #[test]
    fn probability_monotone_in_resolution() {
        let obj = car(0.15, 0.8);
        for kind in vstore_types::OperatorKind::ALL {
            let mut prev = -1.0;
            for r in Resolution::ALL {
                let f = fid(ImageQuality::Good, r);
                let p = detection_probability(kind, &obj, &f, f.quality.signal_retention());
                assert!(
                    p >= prev - 1e-12,
                    "{kind:?} probability not monotone in resolution: {p} < {prev}"
                );
                prev = p;
            }
        }
    }

    #[test]
    fn probability_monotone_in_quality() {
        let obj = car(0.15, 0.8);
        for kind in vstore_types::OperatorKind::ALL {
            let mut prev = -1.0;
            for q in ImageQuality::ALL {
                let f = fid(q, Resolution::R540);
                let p = detection_probability(kind, &obj, &f, f.quality.signal_retention());
                assert!(p >= prev - 1e-12, "{kind:?} not monotone in quality");
                prev = p;
            }
        }
    }

    #[test]
    fn full_nn_needs_higher_resolution_than_motion() {
        let obj = car(0.12, 0.8);
        let low = fid(ImageQuality::Best, Resolution::R180);
        let p_nn = detection_probability(OperatorKind::FullNN, &obj, &low, 1.0);
        let p_motion = detection_probability(OperatorKind::Motion, &obj, &low, 1.0);
        assert!(p_motion > p_nn + 0.2, "motion {p_motion} vs nn {p_nn}");
    }

    #[test]
    fn license_is_more_quality_sensitive_than_nn() {
        let obj = car(0.2, 0.9);
        let rich = fid(ImageQuality::Best, Resolution::R720);
        let poor = fid(ImageQuality::Worst, Resolution::R720);
        let drop_license = detection_probability(OperatorKind::License, &obj, &rich, 1.0)
            - detection_probability(
                OperatorKind::License,
                &obj,
                &poor,
                poor.quality.signal_retention(),
            );
        let drop_nn = detection_probability(OperatorKind::FullNN, &obj, &rich, 1.0)
            - detection_probability(
                OperatorKind::FullNN,
                &obj,
                &poor,
                poor.quality.signal_retention(),
            );
        assert!(
            drop_license > drop_nn,
            "license drop {drop_license} vs nn drop {drop_nn}"
        );
    }

    #[test]
    fn stationary_objects_invisible_to_motion() {
        let mut obj = car(0.2, 0.9);
        obj.speed = 0.0;
        let f = fid(ImageQuality::Best, Resolution::R720);
        assert_eq!(
            detection_probability(OperatorKind::Motion, &obj, &f, 1.0),
            0.0
        );
        assert!(detection_probability(OperatorKind::FullNN, &obj, &f, 1.0) > 0.0);
    }

    #[test]
    fn plateless_vehicles_invisible_to_license() {
        let mut obj = car(0.2, 0.9);
        obj.class = ObjectClass::Vehicle {
            plate_visible: false,
        };
        let f = fid(ImageQuality::Best, Resolution::R720);
        assert_eq!(
            detection_probability(OperatorKind::License, &obj, &f, 1.0),
            0.0
        );
        assert_eq!(detection_probability(OperatorKind::Ocr, &obj, &f, 1.0), 0.0);
    }

    #[test]
    fn detection_sets_are_nested_across_fidelity() {
        // The same draw with a larger p can only add detections.
        let obj = car(0.1, 0.6);
        let poor = fid(ImageQuality::Bad, Resolution::R200);
        let rich = fid(ImageQuality::Best, Resolution::R720);
        for t in 0..200 {
            let at_poor = detects(
                OperatorKind::SpecializedNN,
                &obj,
                &poor,
                poor.quality.signal_retention(),
                t,
            );
            let at_rich = detects(
                OperatorKind::SpecializedNN,
                &obj,
                &rich,
                rich.quality.signal_retention(),
                t,
            );
            if at_poor {
                assert!(
                    at_rich,
                    "detected at poor but not rich fidelity (frame {t})"
                );
            }
        }
    }

    #[test]
    fn ocr_char_probability_behaviour() {
        assert!(ocr_char_probability(30.0, 1.0) > 0.95);
        assert!(ocr_char_probability(4.0, 1.0) < 0.5);
        assert!(ocr_char_probability(30.0, 0.5) < ocr_char_probability(30.0, 1.0));
        let a = ocr_char_draw(1, 2, 3);
        assert_eq!(a, ocr_char_draw(1, 2, 3));
        assert_ne!(a, ocr_char_draw(1, 2, 4));
    }
}
