//! Accuracy scoring: F1 of an operator's output at a consumption fidelity
//! against its output at the ingestion fidelity (the paper's ground truth,
//! §6.1).
//!
//! Because a consumption format may sample frames sparsely, its per-frame
//! predicates are first expanded onto the reference timeline by
//! nearest-consumed-frame propagation — the standard way sampled analytics
//! label the frames they skipped.

use crate::operator::OperatorOutput;
use serde::{Deserialize, Serialize};

/// Precision/recall/F1 report of one operator run against a reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreReport {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// Precision (1.0 when no positives were predicted).
    pub precision: f64,
    /// Recall (1.0 when the reference has no positives).
    pub recall: f64,
    /// F1 score: harmonic mean of precision and recall.
    pub f1: f64,
}

/// Expand a (possibly sparse) operator output onto a reference timeline of
/// source indices: each timeline frame takes the predicate of the nearest
/// consumed frame.
pub fn expand_to_timeline(output: &OperatorOutput, timeline: &[u64]) -> Vec<bool> {
    if output.frames.is_empty() {
        return vec![false; timeline.len()];
    }
    let mut cursor = 0usize;
    timeline
        .iter()
        .map(|&idx| {
            while cursor + 1 < output.frames.len()
                && output.frames[cursor + 1].source_index.abs_diff(idx)
                    <= output.frames[cursor].source_index.abs_diff(idx)
            {
                cursor += 1;
            }
            output.frames[cursor].positive
        })
        .collect()
}

/// F1 score of predicted frame predicates against reference predicates.
/// Both slices must describe the same timeline.
pub fn f1_score(reference: &[bool], predicted: &[bool]) -> ScoreReport {
    debug_assert_eq!(reference.len(), predicted.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&r, &p) in reference.iter().zip(predicted.iter()) {
        match (r, p) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ScoreReport {
        tp,
        fp,
        fn_,
        precision,
        recall,
        f1,
    }
}

/// Score a test output against a reference output: the reference's source
/// indices define the timeline.
pub fn score_against_reference(reference: &OperatorOutput, test: &OperatorOutput) -> ScoreReport {
    let timeline: Vec<u64> = reference.frames.iter().map(|f| f.source_index).collect();
    let reference_flags: Vec<bool> = reference.frames.iter().map(|f| f.positive).collect();
    let predicted = expand_to_timeline(test, &timeline);
    f1_score(&reference_flags, &predicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::FrameResult;

    fn output(pairs: &[(u64, bool)]) -> OperatorOutput {
        OperatorOutput {
            frames: pairs
                .iter()
                .map(|&(source_index, positive)| FrameResult {
                    source_index,
                    positive,
                    detections: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn perfect_agreement_is_f1_one() {
        let reference = output(&[(0, true), (1, false), (2, true)]);
        let report = score_against_reference(&reference, &reference.clone());
        assert_eq!(report.f1, 1.0);
        assert_eq!(report.fp, 0);
        assert_eq!(report.fn_, 0);
    }

    #[test]
    fn no_positives_anywhere_is_f1_one() {
        let reference = output(&[(0, false), (1, false)]);
        let test = output(&[(0, false), (1, false)]);
        assert_eq!(score_against_reference(&reference, &test).f1, 1.0);
    }

    #[test]
    fn misses_reduce_recall_and_false_alarms_reduce_precision() {
        let reference = output(&[(0, true), (1, true), (2, false), (3, false)]);
        let misses = output(&[(0, true), (1, false), (2, false), (3, false)]);
        let report = f1_score(
            &[true, true, false, false],
            &expand_to_timeline(&misses, &[0, 1, 2, 3]),
        );
        assert!(report.recall < 1.0);
        assert_eq!(report.precision, 1.0);

        let alarms = output(&[(0, true), (1, true), (2, true), (3, false)]);
        let report = score_against_reference(&reference, &alarms);
        assert!(report.precision < 1.0);
        assert_eq!(report.recall, 1.0);
        assert!(report.f1 < 1.0);
    }

    #[test]
    fn sparse_output_propagates_to_neighbours() {
        // Consumed only frames 0 and 30; frame 0 positive, frame 30 negative.
        let sparse = output(&[(0, true), (30, false)]);
        let timeline: Vec<u64> = (0..31).collect();
        let expanded = expand_to_timeline(&sparse, &timeline);
        assert!(expanded[0]);
        assert!(expanded[10]); // closer to frame 0
        assert!(!expanded[20]); // closer to frame 30
        assert!(!expanded[30]);
    }

    #[test]
    fn empty_test_output_predicts_all_negative() {
        let reference = output(&[(0, true), (1, true)]);
        let empty = OperatorOutput::default();
        let report = score_against_reference(&reference, &empty);
        assert_eq!(report.tp, 0);
        assert_eq!(report.fn_, 2);
        assert_eq!(report.f1, 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let reference = [true, true, true, true, false, false, false, false];
        let predicted = [true, true, false, false, true, false, false, false];
        let report = f1_score(&reference, &predicted);
        assert_eq!(report.tp, 2);
        assert_eq!(report.fp, 1);
        assert_eq!(report.fn_, 2);
        let expected = 2.0 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5);
        assert!((report.f1 - expected).abs() < 1e-12);
    }
}
