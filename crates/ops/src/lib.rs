//! # vstore-ops
//!
//! The operator library (Table 2 of the paper): nine video-analytics
//! operators spanning the two ported query engines (NoScope-style GPU
//! operators and OpenALPR-style CPU operators), plus the machinery VStore
//! needs around them — an F1 scorer and a consumption cost model.
//!
//! ## How operators are simulated
//!
//! The paper's operators are OpenCV pipelines and TensorFlow networks; here
//! each operator is reproduced as:
//!
//! * a **real algorithm over the block plane** where that is the essence of
//!   the operator (Diff's frame differencing, Motion's background
//!   subtraction, Contour's edge energy, Opflow's block displacement), and
//! * a **deterministic, fidelity-dependent detection model** for the
//!   object-recognition operators (S-NN, NN, License, OCR, Color): an object
//!   is detected when its detection probability — a monotone function of
//!   apparent pixel size, image-quality signal retention and object salience
//!   — exceeds a per-object pseudo-random draw. Using one draw per
//!   `(operator, object, frame)` across all fidelities makes detections at a
//!   poorer fidelity a *subset* of detections at a richer one, which yields
//!   the monotone accuracy behaviour (observation O1) the paper's search
//!   relies on.
//!
//! Accuracy is never hard-coded: it is *measured* as the F1 score of the
//! operator's output at the consumption fidelity against its own output at
//! the ingestion fidelity, exactly as §6.1 defines ground truth.
//!
//! Consumption cost likewise follows the paper's structure: a per-frame
//! setup cost plus a per-pixel cost (so crop/resolution/sampling change cost
//! while image quality does not — observation O2), converted to ×realtime by
//! the calibrated machine model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod library;
pub mod model;
pub mod operator;
pub mod ops;
pub mod scoring;

pub use cost::{selectivity_prior, ConsumptionCostModel};
pub use library::OperatorLibrary;
pub use operator::{Detection, FrameResult, Operator, OperatorOutput};
pub use scoring::{expand_to_timeline, f1_score, ScoreReport};
