//! The consumption cost model: how many ×realtime an operator achieves when
//! consuming frames of a given fidelity.
//!
//! The structure follows the paper's observations: cost is driven by the
//! *quantity* of data (pixels per frame × frames per second), never by image
//! quality (observation O2). The per-operator constants are calibrated so
//! that the consumption speeds of Table 3(a) come out in the right decades —
//! e.g. the full NN consumes ~4× realtime on rich 600p input while the
//! motion detector exceeds 20 000× on 144p at 1/30 sampling.

use serde::{Deserialize, Serialize};
use vstore_sim::MachineSpec;
use vstore_types::{Fidelity, OperatorKind, Speed};

/// Per-operator execution cost constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorCost {
    /// Fixed per-frame setup seconds on the reference execution unit (one
    /// GPU for the NoScope operators, one CPU core for the ALPR operators).
    pub setup_seconds: f64,
    /// Additional seconds per input pixel.
    pub seconds_per_pixel: f64,
}

impl OperatorCost {
    /// The calibrated constants for one operator.
    pub fn for_operator(kind: OperatorKind) -> OperatorCost {
        match kind {
            // The fixed per-frame setup keeps every operator's peak speed
            // below the fastest possible RAW retrieval (~34 000×), matching
            // both the consumption-speed ceiling of Table 3(a) and the fact
            // that no consumer can outrun the frame-dispatch path.
            OperatorKind::Diff => OperatorCost {
                setup_seconds: 3.5e-5,
                seconds_per_pixel: 1.0e-9,
            },
            OperatorKind::SpecializedNN => OperatorCost {
                setup_seconds: 4.0e-5,
                seconds_per_pixel: 0.9e-9,
            },
            OperatorKind::FullNN => OperatorCost {
                setup_seconds: 2.0e-3,
                seconds_per_pixel: 2.9e-8,
            },
            OperatorKind::Motion => OperatorCost {
                setup_seconds: 1.4e-3,
                seconds_per_pixel: 5.0e-8,
            },
            OperatorKind::License => OperatorCost {
                setup_seconds: 5.0e-3,
                seconds_per_pixel: 2.5e-7,
            },
            OperatorKind::Ocr => OperatorCost {
                setup_seconds: 8.0e-3,
                seconds_per_pixel: 2.6e-7,
            },
            OperatorKind::OpticalFlow => OperatorCost {
                setup_seconds: 2.0e-3,
                seconds_per_pixel: 1.5e-7,
            },
            OperatorKind::Color => OperatorCost {
                setup_seconds: 1.4e-3,
                seconds_per_pixel: 2.0e-8,
            },
            OperatorKind::Contour => OperatorCost {
                setup_seconds: 1.5e-3,
                seconds_per_pixel: 6.0e-8,
            },
        }
    }
}

/// Expected fraction of processed segments an operator passes on to the
/// next cascade stage, over typical surveillance content.
///
/// These are priors, not measurements: the query planner uses them together
/// with [`ConsumptionCostModel::seconds_per_video_second`] to order cascade
/// stages by cost × selectivity, and every stage report carries both the
/// planned and the observed selectivity so drift is visible per query. The
/// early filters (diff, motion, plate detection) are the most selective —
/// that is why cascades exist (§2.1) — while verification-style operators
/// (OCR over already-detected plates, the full NN over already-flagged
/// segments) pass most of what reaches them.
pub fn selectivity_prior(kind: OperatorKind) -> f64 {
    match kind {
        OperatorKind::Diff => 0.45,
        OperatorKind::SpecializedNN => 0.35,
        OperatorKind::FullNN => 0.50,
        OperatorKind::Motion => 0.30,
        OperatorKind::License => 0.25,
        OperatorKind::Ocr => 0.60,
        OperatorKind::OpticalFlow => 0.50,
        OperatorKind::Color => 0.40,
        OperatorKind::Contour => 0.50,
    }
}

/// The consumption cost model, parameterised by the machine running the
/// operators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsumptionCostModel {
    machine: MachineSpec,
}

impl ConsumptionCostModel {
    /// Model for the paper's testbed (GPU for NoScope operators, up to 40
    /// cores for ALPR operators).
    pub fn paper_testbed() -> Self {
        ConsumptionCostModel {
            machine: MachineSpec::paper_testbed(),
        }
    }

    /// Model for an arbitrary machine.
    pub fn new(machine: MachineSpec) -> Self {
        ConsumptionCostModel { machine }
    }

    /// The machine this model describes.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Wall-clock seconds the operator spends on a single frame of the given
    /// fidelity, after spreading CPU operators over the query cores.
    pub fn seconds_per_frame(&self, kind: OperatorKind, fidelity: &Fidelity) -> f64 {
        let cost = OperatorCost::for_operator(kind);
        let pixels = fidelity.pixels_per_frame() as f64;
        let unit_seconds = cost.setup_seconds + cost.seconds_per_pixel * pixels;
        if kind.runs_on_gpu() {
            // One GPU; the gpu_work_rate scales weaker/stronger accelerators.
            unit_seconds / self.machine.gpu_work_rate.max(1e-9)
        } else {
            // CPU operators parallelise across the query cores (the paper
            // dispatches segments over up to 40 OpenALPR contexts).
            let cores = f64::from(self.machine.query_cpu_cores.max(1));
            unit_seconds / (cores * self.machine.cpu_work_rate.max(1e-9))
        }
    }

    /// Processing seconds per second of video: frames consumed per
    /// video-second × per-frame cost.
    pub fn seconds_per_video_second(&self, kind: OperatorKind, fidelity: &Fidelity) -> f64 {
        let frames_per_second = 30.0 * fidelity.sampling.fraction();
        frames_per_second * self.seconds_per_frame(kind, fidelity)
    }

    /// Consumption speed in ×realtime.
    pub fn consumption_speed(&self, kind: OperatorKind, fidelity: &Fidelity) -> Speed {
        let s = self.seconds_per_video_second(kind, fidelity);
        if s <= 0.0 {
            Speed(f64::INFINITY)
        } else {
            Speed(1.0 / s)
        }
    }

    /// GPU or CPU seconds charged for consuming `video_seconds` of content
    /// (used by the resource ledger).
    pub fn compute_seconds(
        &self,
        kind: OperatorKind,
        fidelity: &Fidelity,
        video_seconds: f64,
    ) -> f64 {
        self.seconds_per_video_second(kind, fidelity) * video_seconds
    }
}

impl Default for ConsumptionCostModel {
    fn default() -> Self {
        ConsumptionCostModel::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_types::{CropFactor, FrameSampling, ImageQuality, Resolution};

    fn fid(q: ImageQuality, c: CropFactor, r: Resolution, s: FrameSampling) -> Fidelity {
        Fidelity::new(q, c, r, s)
    }

    #[test]
    fn quality_does_not_change_cost() {
        // Observation O2.
        let m = ConsumptionCostModel::paper_testbed();
        for kind in OperatorKind::ALL {
            let best = fid(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::Full,
            );
            let worst = fid(
                ImageQuality::Worst,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::Full,
            );
            assert_eq!(
                m.consumption_speed(kind, &best).factor(),
                m.consumption_speed(kind, &worst).factor(),
                "{kind:?} cost depends on quality"
            );
        }
    }

    #[test]
    fn cost_monotone_in_quantity_knobs() {
        let m = ConsumptionCostModel::paper_testbed();
        for kind in OperatorKind::ALL {
            // More pixels (resolution) never speeds things up.
            let small = fid(
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::Full,
            );
            let big = fid(
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R720,
                FrameSampling::Full,
            );
            assert!(
                m.consumption_speed(kind, &small).factor()
                    > m.consumption_speed(kind, &big).factor(),
                "{kind:?} not slower at higher resolution"
            );
            // Sparser sampling is faster.
            let sparse = fid(
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R720,
                FrameSampling::S1_30,
            );
            assert!(
                m.consumption_speed(kind, &sparse).factor()
                    > m.consumption_speed(kind, &big).factor()
            );
            // Smaller crop is faster (or equal).
            let cropped = fid(
                ImageQuality::Good,
                CropFactor::C50,
                Resolution::R720,
                FrameSampling::Full,
            );
            assert!(
                m.consumption_speed(kind, &cropped).factor()
                    >= m.consumption_speed(kind, &big).factor()
            );
        }
    }

    #[test]
    fn nn_speed_in_paper_ballpark() {
        let m = ConsumptionCostModel::paper_testbed();
        // Table 3(a): NN at good-600p-2/3-100% runs at ~4×.
        let f = fid(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R600,
            FrameSampling::S2_3,
        );
        let s = m.consumption_speed(OperatorKind::FullNN, &f).factor();
        assert!(s > 1.0 && s < 20.0, "NN speed {s}");
        // And over 100× on 400p at 1/30.
        let f = fid(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R400,
            FrameSampling::S1_30,
        );
        let s = m.consumption_speed(OperatorKind::FullNN, &f).factor();
        assert!(s > 60.0, "sparse NN speed {s}");
    }

    #[test]
    fn cheap_operators_exceed_thousands_of_x() {
        let m = ConsumptionCostModel::paper_testbed();
        let f = fid(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R180,
            FrameSampling::S1_30,
        );
        assert!(m.consumption_speed(OperatorKind::Motion, &f).factor() > 5_000.0);
        let f = fid(
            ImageQuality::Best,
            CropFactor::C75,
            Resolution::R100,
            FrameSampling::S2_3,
        );
        assert!(m.consumption_speed(OperatorKind::Diff, &f).factor() > 1_000.0);
        let f = fid(
            ImageQuality::Best,
            CropFactor::C75,
            Resolution::R60,
            FrameSampling::S1_30,
        );
        assert!(m.consumption_speed(OperatorKind::Diff, &f).factor() > 20_000.0);
    }

    #[test]
    fn license_much_slower_than_motion() {
        let m = ConsumptionCostModel::paper_testbed();
        let f = fid(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::Full,
        );
        let license = m.consumption_speed(OperatorKind::License, &f).factor();
        let motion = m.consumption_speed(OperatorKind::Motion, &f).factor();
        assert!(motion / license > 3.0, "motion {motion} license {license}");
        // The cascade's execution costs span orders of magnitude (§2.1):
        // compare each operator at its typical operating fidelity.
        let diff_fid = fid(
            ImageQuality::Best,
            CropFactor::C75,
            Resolution::R100,
            FrameSampling::S2_3,
        );
        let nn_fid = fid(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R600,
            FrameSampling::S2_3,
        );
        let diff = m.consumption_speed(OperatorKind::Diff, &diff_fid).factor();
        let nn = m.consumption_speed(OperatorKind::FullNN, &nn_fid).factor();
        assert!(diff / nn > 200.0, "diff {diff} nn {nn}");
    }

    #[test]
    fn selectivity_priors_are_probabilities_and_favour_early_filters() {
        for kind in OperatorKind::ALL {
            let s = selectivity_prior(kind);
            assert!(s > 0.0 && s < 1.0, "{kind:?} prior {s}");
        }
        // The cheap front-of-cascade filters discard more than the
        // verification operators behind them.
        assert!(selectivity_prior(OperatorKind::Motion) < selectivity_prior(OperatorKind::Ocr));
        assert!(selectivity_prior(OperatorKind::Diff) < selectivity_prior(OperatorKind::FullNN));
    }

    #[test]
    fn compute_seconds_scale_with_duration() {
        let m = ConsumptionCostModel::paper_testbed();
        let f = fid(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        );
        let one = m.compute_seconds(OperatorKind::Color, &f, 1.0);
        let ten = m.compute_seconds(OperatorKind::Color, &f, 10.0);
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn weaker_machine_is_slower() {
        let small = ConsumptionCostModel::new(MachineSpec::small());
        let big = ConsumptionCostModel::paper_testbed();
        let f = fid(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        );
        for kind in [OperatorKind::FullNN, OperatorKind::License] {
            assert!(
                small.consumption_speed(kind, &f).factor()
                    < big.consumption_speed(kind, &f).factor()
            );
        }
    }
}
