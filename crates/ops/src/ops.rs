//! The nine operator implementations (Table 2).

use crate::model::{detects, ocr_char_draw, ocr_char_probability, plate_apparent_height};
use crate::operator::{Detection, FrameResult, Operator, OperatorOutput};
use vstore_codec::VideoFrame;
use vstore_datasets::{ObjectColor, PlateText};
use vstore_types::OperatorKind;

// ---------------------------------------------------------------------------
// Pixel-level operators
// ---------------------------------------------------------------------------

/// Frame-difference detector (NoScope's cheap early filter): flags frames
/// that differ sufficiently from the previously consumed frame.
#[derive(Debug, Default, Clone)]
pub struct DiffOperator {
    /// Mean-absolute-difference threshold (block luma units) above which a
    /// frame counts as "changed".
    pub threshold: f64,
}

impl DiffOperator {
    /// Operator with the default threshold.
    pub fn new() -> Self {
        DiffOperator { threshold: 1.5 }
    }
}

impl Operator for DiffOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::Diff
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let mut out = Vec::with_capacity(frames.len());
        let mut prev: Option<&VideoFrame> = None;
        for frame in frames {
            let positive = match prev {
                // The first frame of a clip is always interesting.
                None => true,
                Some(p) => frame.plane.mean_abs_diff(&p.plane) > self.threshold,
            };
            out.push(FrameResult {
                source_index: frame.source_index,
                positive,
                detections: Vec::new(),
            });
            prev = Some(frame);
        }
        OperatorOutput { frames: out }
    }
}

/// Contour-boundary detector: flags frames whose edge energy exceeds a
/// threshold.
#[derive(Debug, Clone)]
pub struct ContourOperator {
    /// Gradient-energy threshold.
    pub threshold: f64,
}

impl Default for ContourOperator {
    fn default() -> Self {
        ContourOperator { threshold: 8.0 }
    }
}

impl Operator for ContourOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::Contour
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let frames = frames
            .iter()
            .map(|frame| {
                let energy = frame.plane.gradient_energy();
                FrameResult {
                    source_index: frame.source_index,
                    positive: energy > self.threshold,
                    detections: vec![Detection::Contour {
                        energy: energy as f32,
                    }],
                }
            })
            .collect();
        OperatorOutput { frames }
    }
}

// ---------------------------------------------------------------------------
// Object-level operators
// ---------------------------------------------------------------------------

/// A generic object-detection operator driven by the shared detection model.
/// Used directly for S-NN and NN (detect any vehicle) and reused internally
/// by Motion, License and Opflow.
#[derive(Debug, Clone)]
struct DetectionRun {
    kind: OperatorKind,
}

impl DetectionRun {
    fn detections_for(&self, frame: &VideoFrame) -> Vec<u64> {
        frame
            .objects
            .iter()
            .filter(|o| {
                detects(
                    self.kind,
                    o,
                    &frame.fidelity,
                    frame.signal_retention,
                    frame.source_index,
                )
            })
            .map(|o| o.id)
            .collect()
    }
}

/// Specialised shallow NN: rapidly detects vehicles but needs them large and
/// clear.
#[derive(Debug, Default, Clone)]
pub struct SpecializedNNOperator;

impl Operator for SpecializedNNOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::SpecializedNN
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let run = DetectionRun { kind: self.kind() };
        let frames = frames
            .iter()
            .map(|frame| {
                let ids = run.detections_for(frame);
                FrameResult {
                    source_index: frame.source_index,
                    positive: !ids.is_empty(),
                    detections: ids
                        .into_iter()
                        .map(|object_id| Detection::Object { object_id })
                        .collect(),
                }
            })
            .collect();
        OperatorOutput { frames }
    }
}

/// Generic full NN (YOLO-class): the expensive, accurate detector.
#[derive(Debug, Default, Clone)]
pub struct FullNNOperator;

impl Operator for FullNNOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::FullNN
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let run = DetectionRun { kind: self.kind() };
        let frames = frames
            .iter()
            .map(|frame| {
                let ids = run.detections_for(frame);
                FrameResult {
                    source_index: frame.source_index,
                    positive: !ids.is_empty(),
                    detections: ids
                        .into_iter()
                        .map(|object_id| Detection::Object { object_id })
                        .collect(),
                }
            })
            .collect();
        OperatorOutput { frames }
    }
}

/// Motion detector (background subtraction): flags frames containing moving
/// objects. The background model is maintained over the consumed frames so
/// the pixel work is real; the decision uses the shared detection model.
#[derive(Debug, Default, Clone)]
pub struct MotionOperator;

impl Operator for MotionOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::Motion
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let run = DetectionRun { kind: self.kind() };
        let mut background: Option<Vec<f32>> = None;
        let mut out = Vec::with_capacity(frames.len());
        for frame in frames {
            // Running-average background update (the real algorithmic work).
            let samples = frame.plane.samples();
            match &mut background {
                Some(bg) if bg.len() == samples.len() => {
                    for (b, &s) in bg.iter_mut().zip(samples) {
                        *b = 0.9 * *b + 0.1 * f32::from(s);
                    }
                }
                _ => background = Some(samples.iter().map(|&s| f32::from(s)).collect()),
            }
            let ids = run.detections_for(frame);
            out.push(FrameResult {
                source_index: frame.source_index,
                positive: !ids.is_empty(),
                detections: ids
                    .into_iter()
                    .map(|object_id| Detection::MotionRegion { object_id })
                    .collect(),
            });
        }
        OperatorOutput { frames: out }
    }
}

/// Licence-plate region detector.
#[derive(Debug, Default, Clone)]
pub struct LicenseOperator;

impl Operator for LicenseOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::License
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let run = DetectionRun { kind: self.kind() };
        let frames = frames
            .iter()
            .map(|frame| {
                let ids = run.detections_for(frame);
                FrameResult {
                    source_index: frame.source_index,
                    positive: !ids.is_empty(),
                    detections: ids
                        .into_iter()
                        .map(|object_id| Detection::PlateRegion { object_id })
                        .collect(),
                }
            })
            .collect();
        OperatorOutput { frames }
    }
}

/// Optical character recognition over detected plate regions. A frame is
/// positive when at least one plate is read with every character correct.
#[derive(Debug, Default, Clone)]
pub struct OcrOperator;

impl Operator for OcrOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::Ocr
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let run = DetectionRun { kind: self.kind() };
        let frames = frames
            .iter()
            .map(|frame| {
                let mut detections = Vec::new();
                let mut any_correct = false;
                for object in &frame.objects {
                    if !run.detections_for_object(frame, object) {
                        continue;
                    }
                    let truth = match object.plate {
                        Some(p) => p,
                        None => continue,
                    };
                    let plate_px = plate_apparent_height(object, &frame.fidelity);
                    let mut read = truth.0;
                    let mut all_correct = true;
                    for (i, ch) in read.iter_mut().enumerate() {
                        let p = ocr_char_probability(plate_px, frame.signal_retention);
                        if ocr_char_draw(object.id, frame.source_index, i) >= p {
                            // Substitute a deterministic wrong character.
                            let alphabet = PlateText::ALPHABET;
                            let substitute = alphabet[(usize::from(*ch) + 1 + i) % alphabet.len()];
                            *ch = if substitute == *ch {
                                alphabet[0]
                            } else {
                                substitute
                            };
                            all_correct = false;
                        }
                    }
                    any_correct |= all_correct;
                    detections.push(Detection::PlateText {
                        object_id: object.id,
                        text: PlateText(read),
                    });
                }
                FrameResult {
                    source_index: frame.source_index,
                    positive: any_correct,
                    detections,
                }
            })
            .collect();
        OperatorOutput { frames }
    }
}

impl DetectionRun {
    fn detections_for_object(
        &self,
        frame: &VideoFrame,
        object: &vstore_datasets::SceneObject,
    ) -> bool {
        detects(
            self.kind,
            object,
            &frame.fidelity,
            frame.signal_retention,
            frame.source_index,
        )
    }
}

/// Optical-flow tracker: estimates per-object displacement between
/// consecutive consumed frames and flags frames with tracked movement.
#[derive(Debug, Default, Clone)]
pub struct OpticalFlowOperator;

impl Operator for OpticalFlowOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::OpticalFlow
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let run = DetectionRun { kind: self.kind() };
        let mut prev: Option<&VideoFrame> = None;
        let mut out = Vec::with_capacity(frames.len());
        for frame in frames {
            // The real flow magnitude estimate: how much the plane moved.
            let frame_delta = prev
                .map(|p| frame.plane.mean_abs_diff(&p.plane))
                .unwrap_or(0.0);
            let ids = run.detections_for(frame);
            out.push(FrameResult {
                source_index: frame.source_index,
                positive: !ids.is_empty(),
                detections: ids
                    .into_iter()
                    .map(|object_id| Detection::Flow {
                        object_id,
                        magnitude: frame_delta as f32,
                    })
                    .collect(),
            });
            prev = Some(frame);
        }
        OperatorOutput { frames: out }
    }
}

/// Colour filter: detects objects of one target colour.
#[derive(Debug, Clone)]
pub struct ColorOperator {
    /// The colour the query is looking for.
    pub target: ObjectColor,
}

impl Default for ColorOperator {
    fn default() -> Self {
        ColorOperator {
            target: ObjectColor::Blue,
        }
    }
}

impl Operator for ColorOperator {
    fn kind(&self) -> OperatorKind {
        OperatorKind::Color
    }

    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput {
        let frames = frames
            .iter()
            .map(|frame| {
                let detections: Vec<Detection> = frame
                    .objects
                    .iter()
                    .filter(|o| o.color == self.target)
                    .filter(|o| {
                        detects(
                            OperatorKind::Color,
                            o,
                            &frame.fidelity,
                            frame.signal_retention,
                            frame.source_index,
                        )
                    })
                    .map(|o| Detection::ColorMatch {
                        object_id: o.id,
                        color: o.color,
                    })
                    .collect();
                FrameResult {
                    source_index: frame.source_index,
                    positive: !detections.is_empty(),
                    detections,
                }
            })
            .collect();
        OperatorOutput { frames }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_codec::frame::materialize_clip;
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_types::{CropFactor, Fidelity, FrameSampling, ImageQuality, Resolution};

    fn clip(dataset: Dataset, fidelity: Fidelity, frames: u32) -> Vec<VideoFrame> {
        let src = VideoSource::new(dataset);
        materialize_clip(&src.clip(0, frames), fidelity)
    }

    fn ingestion_clip(dataset: Dataset, frames: u32) -> Vec<VideoFrame> {
        clip(dataset, Fidelity::INGESTION, frames)
    }

    #[test]
    fn diff_flags_dashcam_more_than_park() {
        let diff = DiffOperator::new();
        let dash = diff.run(&ingestion_clip(Dataset::Dashcam, 90));
        let park = diff.run(&ingestion_clip(Dataset::Park, 90));
        assert!(dash.selectivity() > park.selectivity());
        assert!(dash.frames[0].positive, "first frame is always positive");
    }

    #[test]
    fn nn_detects_vehicles_at_ingestion_fidelity() {
        let nn = FullNNOperator;
        let out = nn.run(&ingestion_clip(Dataset::Jackson, 300));
        assert!(out.positives() > 0, "NN found nothing in 10 s of jackson");
        // Every detection refers to a real object.
        for f in &out.frames {
            for d in &f.detections {
                assert!(d.object_id().is_some());
            }
        }
    }

    #[test]
    fn snn_detects_no_more_than_nn_at_low_fidelity() {
        let low = Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C100,
            Resolution::R200,
            FrameSampling::Full,
        );
        let frames = clip(Dataset::Jackson, low, 300);
        let snn = SpecializedNNOperator.run(&frames);
        let nn_hi = FullNNOperator.run(&ingestion_clip(Dataset::Jackson, 300));
        // The cheap specialised NN at poor fidelity must not "see" more
        // frames than the full NN at full fidelity.
        assert!(snn.positives() <= nn_hi.positives());
    }

    #[test]
    fn motion_ignores_static_frames_but_fires_on_traffic() {
        let motion = MotionOperator;
        let out = motion.run(&ingestion_clip(Dataset::Jackson, 600));
        let sel = out.selectivity();
        assert!(sel > 0.0 && sel < 1.0, "motion selectivity {sel}");
    }

    #[test]
    fn license_and_ocr_need_rich_fidelity() {
        let poor = Fidelity::new(
            ImageQuality::Worst,
            CropFactor::C100,
            Resolution::R100,
            FrameSampling::Full,
        );
        let rich_frames = ingestion_clip(Dataset::Dashcam, 300);
        let poor_frames = clip(Dataset::Dashcam, poor, 300);
        let license_rich = LicenseOperator.run(&rich_frames).positives();
        let license_poor = LicenseOperator.run(&poor_frames).positives();
        assert!(license_rich > 0);
        assert!(
            license_poor < license_rich,
            "rich {license_rich} poor {license_poor}"
        );
        let ocr_rich = OcrOperator.run(&rich_frames).positives();
        let ocr_poor = OcrOperator.run(&poor_frames).positives();
        assert!(ocr_poor <= ocr_rich);
        assert!(
            ocr_rich <= license_rich,
            "OCR should not out-detect License"
        );
    }

    #[test]
    fn ocr_emits_texts_with_errors_at_poor_quality() {
        let poor = Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C100,
            Resolution::R360,
            FrameSampling::Full,
        );
        let frames = clip(Dataset::Dashcam, poor, 300);
        let out = OcrOperator.run(&frames);
        let mut read_any = false;
        let mut error_seen = false;
        for (f, frame) in out.frames.iter().zip(frames.iter()) {
            for d in &f.detections {
                if let Detection::PlateText { object_id, text } = d {
                    read_any = true;
                    let truth = frame
                        .objects
                        .iter()
                        .find(|o| o.id == *object_id)
                        .and_then(|o| o.plate)
                        .expect("plate text exists for detected object");
                    if text.char_errors(&truth) > 0 {
                        error_seen = true;
                    }
                }
            }
        }
        assert!(read_any, "OCR never attempted a read");
        assert!(
            error_seen,
            "poor quality should introduce at least one character error"
        );
    }

    #[test]
    fn color_operator_only_reports_target_color() {
        let op = ColorOperator {
            target: ObjectColor::Red,
        };
        let frames = ingestion_clip(Dataset::Miami, 600);
        let out = op.run(&frames);
        for (f, frame) in out.frames.iter().zip(frames.iter()) {
            for d in &f.detections {
                if let Detection::ColorMatch { object_id, color } = d {
                    assert_eq!(*color, ObjectColor::Red);
                    let obj = frame.objects.iter().find(|o| o.id == *object_id).unwrap();
                    assert_eq!(obj.color, ObjectColor::Red);
                }
            }
        }
    }

    #[test]
    fn contour_energy_drops_with_resolution() {
        let rich = ContourOperator::default().run(&ingestion_clip(Dataset::Tucson, 30));
        let low_fid = Fidelity::new(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R100,
            FrameSampling::Full,
        );
        let low = ContourOperator::default().run(&clip(Dataset::Tucson, low_fid, 30));
        let energy = |out: &OperatorOutput| -> f32 {
            out.frames
                .iter()
                .flat_map(|f| &f.detections)
                .filter_map(|d| match d {
                    Detection::Contour { energy } => Some(*energy),
                    _ => None,
                })
                .sum::<f32>()
                / out.frames.len() as f32
        };
        assert!(energy(&rich) > 0.0);
        assert!(energy(&rich) >= energy(&low) * 0.8);
    }

    #[test]
    fn opflow_reports_motion_magnitudes() {
        let out = OpticalFlowOperator.run(&ingestion_clip(Dataset::Dashcam, 60));
        let magnitudes: Vec<f32> = out
            .frames
            .iter()
            .flat_map(|f| &f.detections)
            .filter_map(|d| match d {
                Detection::Flow { magnitude, .. } => Some(*magnitude),
                _ => None,
            })
            .collect();
        assert!(!magnitudes.is_empty());
        assert!(magnitudes.iter().any(|m| *m > 0.0));
    }

    #[test]
    fn operators_report_their_kind() {
        assert_eq!(DiffOperator::new().kind(), OperatorKind::Diff);
        assert_eq!(SpecializedNNOperator.kind(), OperatorKind::SpecializedNN);
        assert_eq!(FullNNOperator.kind(), OperatorKind::FullNN);
        assert_eq!(MotionOperator.kind(), OperatorKind::Motion);
        assert_eq!(LicenseOperator.kind(), OperatorKind::License);
        assert_eq!(OcrOperator.kind(), OperatorKind::Ocr);
        assert_eq!(OpticalFlowOperator.kind(), OperatorKind::OpticalFlow);
        assert_eq!(ColorOperator::default().kind(), OperatorKind::Color);
        assert_eq!(ContourOperator::default().kind(), OperatorKind::Contour);
    }
}
