//! The operator interface and its output types.

use serde::{Deserialize, Serialize};
use vstore_codec::VideoFrame;
use vstore_datasets::{ObjectColor, PlateText};
use vstore_types::OperatorKind;

/// A single detection emitted by an operator for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Detection {
    /// A generic object of interest (S-NN / NN).
    Object {
        /// Ground-truth identity of the detected object.
        object_id: u64,
    },
    /// A licence-plate region.
    PlateRegion {
        /// Identity of the vehicle carrying the plate.
        object_id: u64,
    },
    /// A recognised plate string.
    PlateText {
        /// Identity of the vehicle carrying the plate.
        object_id: u64,
        /// The characters read by OCR (possibly with errors).
        text: PlateText,
    },
    /// A region moving against the background.
    MotionRegion {
        /// Identity of the moving object.
        object_id: u64,
    },
    /// An object matching the colour filter.
    ColorMatch {
        /// Identity of the matching object.
        object_id: u64,
        /// Its colour.
        color: ObjectColor,
    },
    /// A tracked optical-flow vector.
    Flow {
        /// Identity of the tracked object.
        object_id: u64,
        /// Displacement magnitude in block units per frame.
        magnitude: f32,
    },
    /// A detected contour boundary (no object identity — purely pixel-based).
    Contour {
        /// Edge energy of the frame.
        energy: f32,
    },
}

impl Detection {
    /// The ground-truth object this detection refers to, when applicable.
    pub fn object_id(&self) -> Option<u64> {
        match self {
            Detection::Object { object_id }
            | Detection::PlateRegion { object_id }
            | Detection::PlateText { object_id, .. }
            | Detection::MotionRegion { object_id }
            | Detection::ColorMatch { object_id, .. }
            | Detection::Flow { object_id, .. } => Some(*object_id),
            Detection::Contour { .. } => None,
        }
    }
}

/// The result of running an operator on one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameResult {
    /// Source index of the frame (in the original 30 fps stream).
    pub source_index: u64,
    /// The operator's frame-level predicate: "this frame is interesting /
    /// contains what I am looking for". This is what accuracy is scored on.
    pub positive: bool,
    /// Object-level detections supporting the predicate.
    pub detections: Vec<Detection>,
}

/// The result of running an operator over a clip.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OperatorOutput {
    /// Per-frame results, in frame order, one per *consumed* frame.
    pub frames: Vec<FrameResult>,
}

impl OperatorOutput {
    /// Number of positive frames.
    pub fn positives(&self) -> usize {
        self.frames.iter().filter(|f| f.positive).count()
    }

    /// The fraction of consumed frames that are positive (the selectivity
    /// that a downstream cascade stage sees).
    pub fn selectivity(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.positives() as f64 / self.frames.len() as f64
        }
    }

    /// Source indices of positive frames.
    pub fn positive_indices(&self) -> Vec<u64> {
        self.frames
            .iter()
            .filter(|f| f.positive)
            .map(|f| f.source_index)
            .collect()
    }
}

/// A video-analytics operator.
///
/// Operators are pure: running one never mutates it, so a single instance
/// can serve profiling and query execution concurrently.
pub trait Operator: Send + Sync {
    /// Which member of the library this is.
    fn kind(&self) -> OperatorKind;

    /// Process a clip of frames (all at one consumption fidelity, in frame
    /// order) and produce one [`FrameResult`] per frame.
    fn run(&self, frames: &[VideoFrame]) -> OperatorOutput;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_selectivity() {
        let out = OperatorOutput {
            frames: vec![
                FrameResult {
                    source_index: 0,
                    positive: true,
                    detections: vec![],
                },
                FrameResult {
                    source_index: 1,
                    positive: false,
                    detections: vec![],
                },
                FrameResult {
                    source_index: 2,
                    positive: true,
                    detections: vec![],
                },
                FrameResult {
                    source_index: 3,
                    positive: false,
                    detections: vec![],
                },
            ],
        };
        assert_eq!(out.positives(), 2);
        assert!((out.selectivity() - 0.5).abs() < 1e-12);
        assert_eq!(out.positive_indices(), vec![0, 2]);
        assert_eq!(OperatorOutput::default().selectivity(), 0.0);
    }

    #[test]
    fn detection_object_ids() {
        assert_eq!(Detection::Object { object_id: 7 }.object_id(), Some(7));
        assert_eq!(Detection::Contour { energy: 1.0 }.object_id(), None);
        let d = Detection::ColorMatch {
            object_id: 3,
            color: ObjectColor::Red,
        };
        assert_eq!(d.object_id(), Some(3));
    }
}
