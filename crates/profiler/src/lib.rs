//! # vstore-profiler
//!
//! The profiling harness VStore's configuration engine drives (§4.1, §4.2).
//!
//! VStore periodically profiles, per ingested stream, (a) each operator's
//! accuracy and consumption speed as a function of fidelity, and (b) the
//! coding cost (size, encode cost, retrieval speed) of candidate storage
//! formats. Profiling is the dominant configuration overhead, so the
//! profiler:
//!
//! * memoises every profiled `(operator, fidelity)` and storage format — the
//!   memoisation the paper credits with eliminating 92 % of would-be
//!   profiling runs during coalescing;
//! * counts profiling runs and models the wall-clock delay each run would
//!   take on the paper's testbed (sample-clip duration ÷ consumption speed,
//!   plus fixed setup), which is what Figure 14 and §6.4 report.
//!
//! Operator accuracy is *measured* by running the real operator library over
//! a 10-second profiling clip at the candidate fidelity and scoring it
//! against the ingestion-fidelity run; speeds and sizes come from the
//! calibrated cost models (see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profiler;

pub use profiler::{ConsumerProfile, Profiler, ProfilerConfig, ProfilingStats, StorageProfile};
