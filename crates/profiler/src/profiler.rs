//! The profiler implementation.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use vstore_codec::frame::materialize_clip;
use vstore_codec::VideoFrame;
use vstore_datasets::{Dataset, VideoSource};
use vstore_ops::OperatorLibrary;
use vstore_sim::CodingCostModel;
use vstore_types::{ByteSize, Fidelity, FrameSampling, OperatorKind, Speed, StorageFormat};

/// The profile of one `(operator, fidelity)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsumerProfile {
    /// Measured F1 against the ingestion-fidelity run.
    pub accuracy: f64,
    /// Consumption speed (×realtime) from the cost model.
    pub consumption_speed: Speed,
}

/// The profile of one candidate storage format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageProfile {
    /// Storage cost per second of stored video.
    pub bytes_per_video_second: ByteSize,
    /// CPU cores needed to transcode one stream into this format in real
    /// time (the ingestion cost).
    pub encode_cores: f64,
    /// Sequential retrieval (decode) speed.
    pub sequential_retrieval_speed: Speed,
}

/// Counters describing the profiling work performed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfilingStats {
    /// Operator profiling runs actually executed (cache misses).
    pub operator_runs: usize,
    /// Operator profiling requests served from the memo table.
    pub operator_cache_hits: usize,
    /// Storage-format profiling runs actually executed.
    pub storage_runs: usize,
    /// Storage-format profiling requests served from the memo table.
    pub storage_cache_hits: usize,
    /// Modelled wall-clock seconds the executed profiling runs would take on
    /// the paper's testbed.
    pub modeled_seconds: f64,
}

impl ProfilingStats {
    /// Total profiling requests (hits + misses) for operators.
    pub fn operator_requests(&self) -> usize {
        self.operator_runs + self.operator_cache_hits
    }

    /// Total profiling requests (hits + misses) for storage formats.
    pub fn storage_requests(&self) -> usize {
        self.storage_runs + self.storage_cache_hits
    }
}

/// Configuration of the profiler.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Length of the profiling clip in frames (the paper uses 10-second
    /// clips: 300 frames).
    pub clip_frames: u32,
    /// First frame of the profiling clip within each stream.
    pub clip_start: u64,
    /// Fixed per-run setup overhead (model loading, pipeline setup) added to
    /// the modelled profiling delay, in seconds.
    pub per_run_overhead_seconds: f64,
    /// Which dataset each operator is profiled on. Operators missing from
    /// the map use `default_dataset`.
    pub operator_datasets: HashMap<OperatorKind, Dataset>,
    /// Dataset used when an operator has no explicit entry, and for coding
    /// profiles.
    pub default_dataset: Dataset,
}

impl ProfilerConfig {
    /// The paper's §6.1 setup: query A operators (Diff, S-NN, NN) profiled on
    /// `jackson`, query B operators (Motion, License, OCR) on `dashcam`,
    /// 10-second clips.
    pub fn paper_evaluation() -> Self {
        let mut operator_datasets = HashMap::new();
        for op in [
            OperatorKind::Diff,
            OperatorKind::SpecializedNN,
            OperatorKind::FullNN,
        ] {
            operator_datasets.insert(op, Dataset::Jackson);
        }
        for op in [
            OperatorKind::Motion,
            OperatorKind::License,
            OperatorKind::Ocr,
        ] {
            operator_datasets.insert(op, Dataset::Dashcam);
        }
        ProfilerConfig {
            clip_frames: 300,
            clip_start: 0,
            per_run_overhead_seconds: 0.8,
            operator_datasets,
            default_dataset: Dataset::Jackson,
        }
    }

    /// A smaller configuration for unit tests (3-second clips).
    pub fn fast_test() -> Self {
        let mut cfg = ProfilerConfig::paper_evaluation();
        cfg.clip_frames = 90;
        cfg
    }

    /// The dataset an operator is profiled on.
    pub fn dataset_for(&self, op: OperatorKind) -> Dataset {
        self.operator_datasets
            .get(&op)
            .copied()
            .unwrap_or(self.default_dataset)
    }
}

#[derive(Default)]
struct ProfilerCaches {
    consumer: HashMap<(OperatorKind, Fidelity), ConsumerProfile>,
    storage: HashMap<StorageFormat, StorageProfile>,
    reference_clips: HashMap<Dataset, Arc<Vec<VideoFrame>>>,
    stats: ProfilingStats,
}

/// The profiling harness.
pub struct Profiler {
    library: OperatorLibrary,
    coding: CodingCostModel,
    config: ProfilerConfig,
    caches: Mutex<ProfilerCaches>,
}

impl Profiler {
    /// A profiler for the paper's evaluation setup.
    pub fn paper_evaluation() -> Self {
        Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::paper_evaluation(),
        )
    }

    /// A profiler with explicit components.
    pub fn new(library: OperatorLibrary, coding: CodingCostModel, config: ProfilerConfig) -> Self {
        Profiler {
            library,
            coding,
            config,
            caches: Mutex::new(ProfilerCaches::default()),
        }
    }

    /// The operator library used for profiling runs.
    pub fn library(&self) -> &OperatorLibrary {
        &self.library
    }

    /// The coding cost model used for storage/retrieval profiles.
    pub fn coding_model(&self) -> &CodingCostModel {
        &self.coding
    }

    /// The profiler configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// Counters of the profiling work done so far.
    pub fn stats(&self) -> ProfilingStats {
        self.caches.lock().stats
    }

    /// Clear memoisation and counters (used between experiments).
    pub fn reset(&self) {
        let mut caches = self.caches.lock();
        caches.consumer.clear();
        caches.storage.clear();
        caches.stats = ProfilingStats::default();
    }

    /// Motion intensity of the content an operator is profiled on.
    pub fn motion_for(&self, op: OperatorKind) -> f64 {
        self.config.dataset_for(op).profile().motion_intensity
    }

    /// Motion intensity of the default (coding) profiling content.
    pub fn coding_motion(&self) -> f64 {
        self.config.default_dataset.profile().motion_intensity
    }

    fn reference_clip(&self, dataset: Dataset) -> Arc<Vec<VideoFrame>> {
        if let Some(clip) = self.caches.lock().reference_clips.get(&dataset) {
            return Arc::clone(clip);
        }
        let source = VideoSource::new(dataset);
        let scenes = source.clip(self.config.clip_start, self.config.clip_frames);
        let frames = Arc::new(materialize_clip(&scenes, Fidelity::INGESTION));
        self.caches
            .lock()
            .reference_clips
            .insert(dataset, Arc::clone(&frames));
        frames
    }

    /// Profile one `(operator, fidelity)` pair: run the operator over the
    /// profiling clip at that fidelity and score it against the ingestion
    /// run. Memoised.
    pub fn profile_consumer(&self, op: OperatorKind, fidelity: Fidelity) -> ConsumerProfile {
        {
            let mut caches = self.caches.lock();
            if let Some(profile) = caches.consumer.get(&(op, fidelity)).copied() {
                caches.stats.operator_cache_hits += 1;
                return profile;
            }
        }
        let dataset = self.config.dataset_for(op);
        let reference = self.reference_clip(dataset);
        let source = VideoSource::new(dataset);
        let scenes = source.clip(self.config.clip_start, self.config.clip_frames);
        let test_frames = materialize_clip(&scenes, fidelity);
        let accuracy = self
            .library
            .evaluate_accuracy(op, &reference, &test_frames)
            .f1;
        let consumption_speed = self.library.consumption_speed(op, &fidelity);
        let profile = ConsumerProfile {
            accuracy,
            consumption_speed,
        };

        let clip_seconds = f64::from(self.config.clip_frames) / 30.0;
        let run_seconds = clip_seconds / consumption_speed.factor().max(1e-6)
            + self.config.per_run_overhead_seconds;
        let mut caches = self.caches.lock();
        caches.consumer.insert((op, fidelity), profile);
        caches.stats.operator_runs += 1;
        caches.stats.modeled_seconds += run_seconds;
        profile
    }

    /// Profile a candidate storage format: size, ingestion cost and
    /// sequential retrieval speed, on the default profiling content.
    /// Memoised.
    pub fn profile_storage(&self, format: StorageFormat) -> StorageProfile {
        {
            let mut caches = self.caches.lock();
            if let Some(profile) = caches.storage.get(&format).copied() {
                caches.stats.storage_cache_hits += 1;
                return profile;
            }
        }
        let motion = self.coding_motion();
        let profile = StorageProfile {
            bytes_per_video_second: self.coding.bytes_per_video_second(&format, motion),
            encode_cores: self.coding.encode_cores_for_realtime(&format, motion),
            sequential_retrieval_speed: self.coding.sequential_decode_speed(&format, motion),
        };
        let clip_seconds = f64::from(self.config.clip_frames) / 30.0;
        // A coding profile transcodes and decodes the sample clip once.
        let encode_seconds = profile.encode_cores * clip_seconds / 8.0; // 8 encoder threads
        let decode_seconds = clip_seconds / profile.sequential_retrieval_speed.factor().max(1e-6);
        let mut caches = self.caches.lock();
        caches.storage.insert(format, profile);
        caches.stats.storage_runs += 1;
        caches.stats.modeled_seconds += encode_seconds + decode_seconds + 0.05;
        profile
    }

    /// Retrieval speed of a storage format when serving a consumer that
    /// samples at `consumer_sampling` (GOP skipping / sampled RAW reads).
    /// Derived from the cost model; not counted as a separate profiling run
    /// because it reuses the storage profile's decode measurements.
    pub fn retrieval_speed(
        &self,
        format: &StorageFormat,
        consumer_sampling: FrameSampling,
    ) -> Speed {
        self.coding
            .retrieval_speed(format, self.coding_motion(), consumer_sampling)
    }

    /// The number of fidelity options in the full space — what exhaustive
    /// profiling of one operator would cost (Figure 14's baseline).
    pub fn exhaustive_runs_per_operator(&self) -> usize {
        vstore_types::FidelitySpace::full().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_types::{CodingOption, CropFactor, ImageQuality, Resolution};

    fn profiler() -> Profiler {
        Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        )
    }

    #[test]
    fn consumer_profile_accuracy_bounds_and_memoisation() {
        let p = profiler();
        let fid = Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R400,
            FrameSampling::S1_2,
        );
        let first = p.profile_consumer(OperatorKind::FullNN, fid);
        assert!(first.accuracy > 0.0 && first.accuracy <= 1.0);
        assert!(first.consumption_speed.factor() > 0.0);
        assert_eq!(p.stats().operator_runs, 1);
        // Second request is a cache hit and returns the identical profile.
        let second = p.profile_consumer(OperatorKind::FullNN, fid);
        assert_eq!(first, second);
        let stats = p.stats();
        assert_eq!(stats.operator_runs, 1);
        assert_eq!(stats.operator_cache_hits, 1);
        assert_eq!(stats.operator_requests(), 2);
        assert!(stats.modeled_seconds > 0.0);
    }

    #[test]
    fn ingestion_fidelity_profiles_at_accuracy_one() {
        let p = profiler();
        for op in [OperatorKind::Motion, OperatorKind::License] {
            let profile = p.profile_consumer(op, Fidelity::INGESTION);
            assert_eq!(profile.accuracy, 1.0, "{op:?}");
        }
    }

    #[test]
    fn richer_fidelity_is_slower_to_consume() {
        let p = profiler();
        let rich = p.profile_consumer(OperatorKind::License, Fidelity::INGESTION);
        let poor = p.profile_consumer(
            OperatorKind::License,
            Fidelity::new(
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::S1_30,
            ),
        );
        assert!(poor.consumption_speed.factor() > rich.consumption_speed.factor());
        assert!(poor.accuracy <= rich.accuracy + 1e-9);
    }

    #[test]
    fn storage_profile_memoises_and_orders_sizes() {
        let p = profiler();
        let golden = StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST);
        let small = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Bad,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::S1_6,
            ),
            CodingOption::SMALLEST,
        );
        let g = p.profile_storage(golden);
        let s = p.profile_storage(small);
        assert!(g.bytes_per_video_second > s.bytes_per_video_second);
        assert!(g.encode_cores > s.encode_cores);
        assert!(g.sequential_retrieval_speed.factor() < s.sequential_retrieval_speed.factor());
        let _ = p.profile_storage(golden);
        let stats = p.stats();
        assert_eq!(stats.storage_runs, 2);
        assert_eq!(stats.storage_cache_hits, 1);
    }

    #[test]
    fn retrieval_speed_improves_with_sparse_consumers() {
        let p = profiler();
        let format = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::Full,
            ),
            CodingOption::Encoded {
                keyframe_interval: vstore_types::KeyframeInterval::K10,
                speed: vstore_types::SpeedStep::Fast,
            },
        );
        let dense = p.retrieval_speed(&format, FrameSampling::Full);
        let sparse = p.retrieval_speed(&format, FrameSampling::S1_30);
        assert!(sparse.factor() > dense.factor());
    }

    #[test]
    fn reset_clears_counters() {
        let p = profiler();
        p.profile_consumer(OperatorKind::Diff, Fidelity::INGESTION);
        assert!(p.stats().operator_runs > 0);
        p.reset();
        assert_eq!(p.stats(), ProfilingStats::default());
    }

    #[test]
    fn exhaustive_baseline_matches_space_size() {
        assert_eq!(profiler().exhaustive_runs_per_operator(), 600);
    }

    #[test]
    fn paper_config_maps_queries_to_datasets() {
        let cfg = ProfilerConfig::paper_evaluation();
        assert_eq!(cfg.dataset_for(OperatorKind::FullNN), Dataset::Jackson);
        assert_eq!(cfg.dataset_for(OperatorKind::Ocr), Dataset::Dashcam);
        assert_eq!(cfg.dataset_for(OperatorKind::Color), Dataset::Jackson);
        assert_eq!(cfg.clip_frames, 300);
    }
}
