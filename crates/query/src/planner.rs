//! The query planning pass: metadata-driven segment skipping and cost-based
//! cascade ordering.
//!
//! Both behaviours are **off by default** — [`PlanOptions::default`] makes
//! [`QueryEngine::execute_planned`](crate::QueryEngine::execute_planned)
//! byte-identical to [`QueryEngine::execute`](crate::QueryEngine::execute) —
//! because the skip is approximate: the ingest-time change scores (see
//! [`vstore_codec::meta`]) bound frame-to-frame change, but the cascade's
//! first stage flags the first frame of every clip regardless of content, so
//! a skipped segment may drop positives an exact scan would report. Callers
//! opt in per query (or per session through `RuntimeOptions`) when that
//! trade is acceptable — the EKO-style "don't decode what the first stage
//! would discard" acceleration.

use vstore_types::{Result, VStoreError};

/// Skip threshold matching [`vstore_ops`]'s diff operator: a segment whose
/// largest sampled frame-to-frame change stays below the change the diff
/// stage needs to flag a frame is one that stage would discard.
pub const DEFAULT_SKIP_THRESHOLD: f64 = 1.5;

/// Planner configuration for one query execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanOptions {
    /// Master switch. `false` (the default) disables both the metadata skip
    /// and the stage reordering: execution is byte-identical to the
    /// unplanned engine.
    pub enabled: bool,
    /// Segments whose [`SegmentMeta::max_sampled_change`]
    /// (vstore_codec::SegmentMeta::max_sampled_change) falls below this
    /// threshold are skipped without being fetched or decoded. Raise it to
    /// skip more aggressively, lower it towards 0 to skip only perfectly
    /// static segments. Only consulted when `enabled` is `true`.
    pub skip_threshold: f64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            enabled: false,
            skip_threshold: DEFAULT_SKIP_THRESHOLD,
        }
    }
}

impl PlanOptions {
    /// Planning enabled at the default skip threshold.
    pub fn planned() -> Self {
        PlanOptions {
            enabled: true,
            ..PlanOptions::default()
        }
    }

    /// Set the skip threshold (validated by [`validate`](Self::validate)).
    pub fn with_skip_threshold(mut self, threshold: f64) -> Self {
        self.skip_threshold = threshold;
        self
    }

    /// Reject thresholds that cannot express a skip decision.
    pub fn validate(&self) -> Result<()> {
        if !self.skip_threshold.is_finite() || self.skip_threshold < 0.0 {
            return Err(VStoreError::invalid_argument(format!(
                "PlanOptions::skip_threshold must be finite and >= 0, got {}",
                self.skip_threshold
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_exact_mode() {
        let plan = PlanOptions::default();
        assert!(!plan.enabled);
        assert_eq!(plan.skip_threshold, DEFAULT_SKIP_THRESHOLD);
        assert!(plan.validate().is_ok());
        assert!(PlanOptions::planned().enabled);
    }

    #[test]
    fn validate_rejects_unusable_thresholds() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            let plan = PlanOptions::planned().with_skip_threshold(bad);
            assert!(
                matches!(plan.validate(), Err(VStoreError::InvalidArgument(_))),
                "{bad} accepted"
            );
        }
        assert!(PlanOptions::planned()
            .with_skip_threshold(0.0)
            .validate()
            .is_ok());
    }
}
