//! Query execution over the segment store.

use crate::cascade::QuerySpec;
use std::collections::BTreeSet;
use std::sync::Arc;
use vstore_codec::Transcoder;
use vstore_ops::OperatorLibrary;
use vstore_sim::{scoped_map, ResourceKind, VirtualClock};
use vstore_storage::{SegmentKey, SegmentStore};
use vstore_types::{
    ByteSize, Configuration, Consumer, OperatorKind, Result, Speed, VStoreError, VideoSeconds,
};

/// Per-stage execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// The operator of this stage.
    pub op: OperatorKind,
    /// Segments this stage processed.
    pub segments_processed: usize,
    /// Segments this stage flagged as positive (passed to the next stage).
    pub segments_passed: usize,
    /// Frames the operator consumed.
    pub frames_consumed: usize,
    /// Modelled processing seconds charged to this stage (retrieval +
    /// consumption, whichever is slower governs).
    pub processing_seconds: f64,
    /// Segments whose data had to be served by a fallback (richer) format
    /// because the subscribed format's segment was eroded.
    pub fallback_segments: usize,
}

/// The result of executing one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The query that ran.
    pub query: QuerySpec,
    /// Video timespan covered by the query.
    pub video: VideoSeconds,
    /// End-to-end query speed in ×realtime.
    pub speed: Speed,
    /// Source frame indices the final cascade stage flagged as positive.
    pub positive_frames: Vec<u64>,
    /// Per-stage statistics.
    pub stages: Vec<StageReport>,
    /// Bytes read from the segment store.
    pub bytes_read: ByteSize,
}

impl QueryResult {
    /// Selectivity of the full cascade: positive segments of the last stage
    /// over segments scanned by the first stage.
    pub fn selectivity(&self) -> f64 {
        match (self.stages.first(), self.stages.last()) {
            (Some(first), Some(last)) if first.segments_processed > 0 => {
                last.segments_passed as f64 / first.segments_processed as f64
            }
            _ => 0.0,
        }
    }
}

/// The query engine.
///
/// Query execution is retrieval-bound (§6.2): most wall-clock time goes to
/// fetching segments from the store and decoding them. The engine therefore
/// runs a **prefetch/decode stage** ahead of the operator cascade: segments
/// are fetched, decoded and converted to the consumption format in parallel
/// batches of [`prefetch`](Self::with_prefetch) segments (bounded
/// lookahead), while operators and all accounting run on the calling thread
/// in segment order — [`StageReport`]s are identical to the sequential
/// (`prefetch = 1`) path.
pub struct QueryEngine {
    store: Arc<SegmentStore>,
    library: OperatorLibrary,
    transcoder: Transcoder,
    clock: VirtualClock,
    prefetch: usize,
}

/// One segment's data after the prefetch/decode stage.
struct PrefetchedSegment {
    segment: u64,
    data: vstore_codec::SegmentData,
    used_fallback: bool,
    read_bytes: ByteSize,
    frames: Vec<vstore_codec::VideoFrame>,
}

impl QueryEngine {
    /// An engine reading from the given store, without prefetching.
    pub fn new(
        store: Arc<SegmentStore>,
        library: OperatorLibrary,
        transcoder: Transcoder,
        clock: VirtualClock,
    ) -> Self {
        QueryEngine {
            store,
            library,
            transcoder,
            clock,
            prefetch: 1,
        }
    }

    /// Fetch and decode up to `prefetch` segments in parallel ahead of the
    /// operator cascade (clamped to ≥ 1; 1 disables prefetching).
    pub fn with_prefetch(mut self, prefetch: usize) -> Self {
        self.prefetch = prefetch.max(1);
        self
    }

    /// The configured prefetch lookahead.
    pub fn prefetch(&self) -> usize {
        self.prefetch
    }

    /// The virtual clock charged by query execution.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Execute a query over a contiguous range of segments of one stream,
    /// using the consumption/storage formats of the given configuration.
    pub fn execute(
        &self,
        stream: &str,
        query: &QuerySpec,
        config: &Configuration,
        first_segment: u64,
        segment_count: u64,
    ) -> Result<QueryResult> {
        if stream.is_empty() {
            return Err(VStoreError::invalid_argument("query stream name is empty"));
        }
        if segment_count == 0 {
            return Err(VStoreError::invalid_argument("query covers zero segments"));
        }
        if first_segment.checked_add(segment_count).is_none() {
            return Err(VStoreError::invalid_argument(
                "query segment range overflows u64",
            ));
        }
        let mut active: BTreeSet<u64> = (first_segment..first_segment + segment_count).collect();
        let mut stages = Vec::with_capacity(query.cascade.len());
        let mut total_seconds = 0.0f64;
        let mut bytes_read = ByteSize::ZERO;
        let mut positive_frames = Vec::new();

        for (stage_idx, &op) in query.cascade.iter().enumerate() {
            let consumer = Consumer {
                op,
                accuracy: query.accuracy,
            };
            let sub = config.subscription(&consumer).ok_or_else(|| {
                VStoreError::InvalidState(format!(
                    "configuration has no subscription for {consumer}"
                ))
            })?;
            let operator = self.library.instantiate(op);
            let mut report = StageReport {
                op,
                segments_processed: 0,
                segments_passed: 0,
                frames_consumed: 0,
                processing_seconds: 0.0,
                fallback_segments: 0,
            };
            let mut next_active = BTreeSet::new();
            let mut stage_positive_frames = Vec::new();
            // Bounded lookahead: fetch + decode + convert the next `prefetch`
            // segments in parallel, then run the operator and all accounting
            // on this thread in segment order.
            let stage_segments: Vec<u64> = active.iter().copied().collect();
            for window in stage_segments.chunks(self.prefetch) {
                for prefetched in self.prefetch_window(stream, config, sub, window)? {
                    let PrefetchedSegment {
                        segment,
                        data,
                        used_fallback,
                        read_bytes,
                        frames,
                    } = prefetched;
                    bytes_read += read_bytes;
                    report.segments_processed += 1;
                    if used_fallback {
                        report.fallback_segments += 1;
                    }
                    report.frames_consumed += frames.len();
                    let output = operator.run(&frames);
                    // Charge modelled time: the stage runs at the lower of the
                    // consumption speed and the (possibly fallback-degraded)
                    // retrieval speed.
                    let retrieval = if used_fallback {
                        // Re-profile retrieval against the format actually used.
                        self.transcoder.retrieval_speed(
                            &data.storage_format(),
                            0.3,
                            &sub.consumption,
                        )
                    } else {
                        sub.retrieval_speed
                    };
                    let effective = sub.consumption_speed.min(retrieval);
                    let segment_seconds = data.frame_count() as f64
                        / (30.0 * data.fidelity().sampling.fraction()).max(1e-9);
                    report.processing_seconds += segment_seconds / effective.factor().max(1e-9);
                    if output.positives() > 0 {
                        report.segments_passed += 1;
                        next_active.insert(segment);
                    }
                    if stage_idx + 1 == query.cascade.len() {
                        stage_positive_frames.extend(output.positive_indices());
                    }
                    self.clock.charge_bytes(ResourceKind::DiskRead, read_bytes);
                    let compute = self.library.compute_seconds(
                        op,
                        &sub.consumption.fidelity,
                        segment_seconds,
                    );
                    let kind = if op.runs_on_gpu() {
                        ResourceKind::GpuCompute
                    } else {
                        ResourceKind::OperatorCpu
                    };
                    self.clock.charge_background_seconds(kind, compute);
                }
            }
            total_seconds += report.processing_seconds;
            if stage_idx + 1 == query.cascade.len() {
                positive_frames = stage_positive_frames;
            }
            stages.push(report);
            active = next_active;
            if active.is_empty() && stage_idx + 1 < query.cascade.len() {
                // Nothing left for later stages; record them as idle.
                for &op in &query.cascade[stage_idx + 1..] {
                    stages.push(StageReport {
                        op,
                        segments_processed: 0,
                        segments_passed: 0,
                        frames_consumed: 0,
                        processing_seconds: 0.0,
                        fallback_segments: 0,
                    });
                }
                break;
            }
        }

        let video = VideoSeconds(segment_count as f64 * 8.0);
        self.clock.add_video_processed(video);
        self.clock.advance(total_seconds);
        Ok(QueryResult {
            query: query.clone(),
            video,
            speed: Speed::from_durations(video.seconds(), total_seconds),
            positive_frames,
            stages,
            bytes_read,
        })
    }

    /// The prefetch/decode stage: fetch one window of segments from the
    /// store, decode the sampled frames and convert them to the consumption
    /// format, all in parallel. Segments not ingested at all are dropped;
    /// segment order is preserved, so downstream accounting is identical to
    /// the sequential path.
    fn prefetch_window(
        &self,
        stream: &str,
        config: &Configuration,
        sub: &vstore_types::Subscription,
        window: &[u64],
    ) -> Result<Vec<PrefetchedSegment>> {
        let fetched = scoped_map(
            window.to_vec(),
            self.prefetch,
            |_, segment| -> Result<Option<PrefetchedSegment>> {
                let (data, used_fallback, read_bytes) =
                    self.fetch_segment(stream, config, sub.storage, segment, &sub.consumption)?;
                let data = match data {
                    Some(d) => d,
                    None => return Ok(None), // segment not ingested at all
                };
                // Decode only the frames the consumption format samples.
                let (stored_frames, _) = data.decode_sampled(sub.consumption.fidelity.sampling)?;
                let frames = self
                    .transcoder
                    .convert_for_consumption(&stored_frames, &sub.consumption)?;
                Ok(Some(PrefetchedSegment {
                    segment,
                    data,
                    used_fallback,
                    read_bytes,
                    frames,
                }))
            },
        );
        let mut out = Vec::with_capacity(window.len());
        let mut first_error = None;
        for item in fetched {
            match item {
                Ok(Some(prefetched)) => out.push(prefetched),
                Ok(None) => {}
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            // On error, the caller discards the window, so charge the reads
            // that did happen here — the ledger always reflects real disk
            // traffic, like the ingest side's charge-everything-persisted
            // policy. (With prefetch = 1 the window is one segment and
            // nothing was read on error, matching the sequential path.)
            Some(e) => {
                for prefetched in &out {
                    self.clock
                        .charge_bytes(ResourceKind::DiskRead, prefetched.read_bytes);
                }
                Err(e)
            }
            None => Ok(out),
        }
    }

    /// Fetch one segment in the subscribed format, falling back to a richer
    /// stored format when it is missing (eroded).
    fn fetch_segment(
        &self,
        stream: &str,
        config: &Configuration,
        preferred: vstore_types::FormatId,
        segment: u64,
        consumption: &vstore_types::ConsumptionFormat,
    ) -> Result<(Option<vstore_codec::SegmentData>, bool, ByteSize)> {
        let key = SegmentKey::new(stream, preferred, segment);
        if let Some(bytes) = self.store.get(&key)? {
            let size = ByteSize(bytes.len() as u64);
            return Ok((
                Some(vstore_codec::SegmentData::from_bytes(&bytes)?),
                false,
                size,
            ));
        }
        // Fallback: any stored format with satisfiable fidelity, preferring
        // the cheapest (fewest bytes would be nice, but richer-or-equal and
        // present is the requirement; iterate in id order so the golden
        // format is the last resort only if numbered formats fail).
        let mut candidates: Vec<_> = config
            .storage_formats
            .iter()
            .filter(|(id, sf)| **id != preferred && sf.satisfies(consumption))
            .collect();
        candidates.sort_by_key(|(id, _)| std::cmp::Reverse(id.0));
        for (id, _) in candidates {
            let key = SegmentKey::new(stream, *id, segment);
            if let Some(bytes) = self.store.get(&key)? {
                let size = ByteSize(bytes.len() as u64);
                return Ok((
                    Some(vstore_codec::SegmentData::from_bytes(&bytes)?),
                    true,
                    size,
                ));
            }
        }
        Ok((None, false, ByteSize::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vstore_core::{Alternative, ConfigurationEngine, EngineOptions};
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_ingest::IngestionPipeline;
    use vstore_ops::OperatorLibrary;
    use vstore_profiler::{Profiler, ProfilerConfig};
    use vstore_sim::CodingCostModel;
    use vstore_types::FidelitySpace;

    struct Fixture {
        store: Arc<SegmentStore>,
        config: Configuration,
        one_to_n: Configuration,
        engine: QueryEngine,
    }

    fn fixture(consumer_accuracy: f64) -> Fixture {
        let profiler = Arc::new(Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        ));
        let options = EngineOptions {
            fidelity_space: FidelitySpace::reduced(),
            ..EngineOptions::default()
        };
        let engine = ConfigurationEngine::new(Arc::clone(&profiler), options);
        let query = QuerySpec::query_a(consumer_accuracy);
        let consumers = query.consumers();
        let config = engine.derive(&consumers).unwrap();
        let one_to_n = engine
            .derive_alternative(&consumers, Alternative::OneToN)
            .unwrap();

        let store = Arc::new(SegmentStore::open_temp("query-engine").unwrap());
        let ingest = IngestionPipeline::new(
            Arc::clone(&store),
            Transcoder::default(),
            VirtualClock::new(),
        );
        let source = VideoSource::new(Dataset::Jackson);
        // Ingest into the union of both configurations' formats by ingesting
        // twice (ids overlap only for the golden format, which is identical).
        ingest.ingest_segments(&source, 0, 2, &config).unwrap();
        ingest.ingest_segments(&source, 0, 2, &one_to_n).unwrap();

        let engine = QueryEngine::new(
            Arc::clone(&store),
            OperatorLibrary::paper_testbed(),
            Transcoder::default(),
            VirtualClock::new(),
        );
        Fixture {
            store,
            config,
            one_to_n,
            engine,
        }
    }

    #[test]
    fn query_a_runs_end_to_end_and_reports_speed() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_a(0.8);
        let result = fx
            .engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap();
        assert_eq!(result.stages.len(), 3);
        assert_eq!(result.stages[0].segments_processed, 2);
        assert!((result.video.seconds() - 16.0).abs() < 1e-9);
        assert!(result.speed.factor() > 1.0, "query speed {}", result.speed);
        assert!(result.bytes_read.bytes() > 0);
        // Later stages never process more segments than earlier ones.
        for w in result.stages.windows(2) {
            assert!(w[1].segments_processed <= w[0].segments_passed);
        }
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    #[test]
    fn vstore_configuration_is_faster_than_one_to_n() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_a(0.8);
        let vstore = fx
            .engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap();
        let baseline = fx
            .engine
            .execute("jackson", &query, &fx.one_to_n, 0, 2)
            .unwrap();
        assert!(
            vstore.speed.factor() > baseline.speed.factor(),
            "VStore {} should beat 1→N {}",
            vstore.speed,
            baseline.speed
        );
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    #[test]
    fn missing_subscription_is_an_error() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_b(0.8); // configuration was built for query A
        let err = fx
            .engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidState(_)));
        assert!(fx
            .engine
            .execute("jackson", &QuerySpec::query_a(0.8), &fx.config, 0, 0)
            .is_err());
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    #[test]
    fn queries_over_missing_streams_return_empty_results() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_a(0.8);
        let result = fx
            .engine
            .execute("nonexistent", &query, &fx.config, 0, 2)
            .unwrap();
        assert_eq!(result.stages[0].segments_processed, 0);
        assert!(result.positive_frames.is_empty());
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }
}
