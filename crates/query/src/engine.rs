//! Query execution over the segment store.

use crate::cascade::QuerySpec;
use crate::planner::PlanOptions;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;
use vstore_codec::{SegmentMeta, Transcoder};
use vstore_ops::{selectivity_prior, OperatorLibrary};
use vstore_sim::{scoped_map, ResourceKind, VirtualClock};
use vstore_storage::{
    DecodedRead, DecodedSegment, ReadSource, SegmentKey, SegmentReader, SegmentStore,
};
use vstore_types::{
    ByteSize, Configuration, Consumer, OperatorKind, Result, Speed, VStoreError, VideoSeconds,
};

/// Per-stage execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// The operator of this stage.
    pub op: OperatorKind,
    /// Segments this stage processed.
    pub segments_processed: usize,
    /// Segments this stage flagged as positive (passed to the next stage).
    pub segments_passed: usize,
    /// Frames the operator consumed.
    pub frames_consumed: usize,
    /// Modelled processing seconds charged to this stage (retrieval +
    /// consumption, whichever is slower governs).
    pub processing_seconds: f64,
    /// Segments whose data had to be served by a fallback (richer) format
    /// because the subscribed format's segment was eroded.
    pub fallback_segments: usize,
    /// The selectivity the planner predicted for this stage
    /// ([`vstore_ops::selectivity_prior`]); `None` when the query ran
    /// unplanned.
    pub planned_selectivity: Option<f64>,
}

impl StageReport {
    /// The selectivity this stage actually observed: segments passed over
    /// segments processed. `None` when the stage processed nothing (idle).
    pub fn actual_selectivity(&self) -> Option<f64> {
        (self.segments_processed > 0)
            .then(|| self.segments_passed as f64 / self.segments_processed as f64)
    }
}

/// The result of executing one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The query that ran.
    pub query: QuerySpec,
    /// Video timespan covered by the query.
    pub video: VideoSeconds,
    /// End-to-end query speed in ×realtime.
    pub speed: Speed,
    /// Source frame indices the final cascade stage flagged as positive.
    pub positive_frames: Vec<u64>,
    /// Per-stage statistics, in execution order (the planner may execute
    /// stages out of declaration order; the declared final stage always
    /// runs last).
    pub stages: Vec<StageReport>,
    /// Bytes read from the segment store.
    pub bytes_read: ByteSize,
    /// Segments the planner skipped from metadata alone — never fetched,
    /// never decoded, never charged. Always 0 when the query ran unplanned.
    pub segments_skipped: usize,
}

impl QueryResult {
    /// Selectivity of the full cascade: positive segments of the last stage
    /// over segments scanned by the first stage.
    pub fn selectivity(&self) -> f64 {
        match (self.stages.first(), self.stages.last()) {
            (Some(first), Some(last)) if first.segments_processed > 0 => {
                last.segments_passed as f64 / first.segments_processed as f64
            }
            _ => 0.0,
        }
    }
}

/// The query engine.
///
/// Query execution is retrieval-bound (§6.2): most wall-clock time goes to
/// fetching segments from the store and decoding them. The engine therefore
/// runs a **prefetch/decode stage** ahead of the operator cascade: segments
/// are fetched, decoded and converted to the consumption format in parallel
/// batches of [`prefetch`](Self::with_prefetch) segments (bounded
/// lookahead), while operators and all accounting run on the calling thread
/// in segment order — [`StageReport`]s are identical to the sequential
/// (`prefetch = 1`) path.
///
/// All reads flow through a [`SegmentReader`]: when its two-tier segment
/// cache is enabled (see [`SegmentReader::new`]), repeated cascade stages
/// and hot streams are served from memory — charged to
/// [`ResourceKind::MemRead`] instead of [`ResourceKind::DiskRead`] — and a
/// decoded-frames hit skips `decode_sampled` entirely. Query *results* are
/// identical with the cache on or off; only the resource ledger (and
/// wall-clock time) changes.
pub struct QueryEngine {
    reader: Arc<SegmentReader>,
    library: OperatorLibrary,
    transcoder: Transcoder,
    clock: VirtualClock,
    prefetch: usize,
}

/// The span name a segment fetch records under, by where the bytes came
/// from — the cache-tier hit/miss story of a traced request.
fn read_span_name(source: ReadSource) -> &'static str {
    match source {
        ReadSource::DecodedCache => "read.decoded_cache",
        ReadSource::RawCache => "read.raw_cache",
        ReadSource::Disk => "read.disk",
        ReadSource::Cold => "read.cold",
    }
}

/// One segment's data after the prefetch/decode stage.
struct PrefetchedSegment {
    segment: u64,
    decoded: Arc<DecodedSegment>,
    used_fallback: bool,
    read_bytes: ByteSize,
    source: ReadSource,
    frames: Vec<vstore_codec::VideoFrame>,
}

impl QueryEngine {
    /// An engine reading from the given store, without prefetching and
    /// without caching (a passthrough [`SegmentReader`]).
    pub fn new(
        store: Arc<SegmentStore>,
        library: OperatorLibrary,
        transcoder: Transcoder,
        clock: VirtualClock,
    ) -> Self {
        QueryEngine {
            reader: Arc::new(SegmentReader::disabled(store)),
            library,
            transcoder,
            clock,
            prefetch: 1,
        }
    }

    /// Read through the given (possibly caching, possibly shared)
    /// [`SegmentReader`] instead of the default passthrough one. The reader
    /// must front the same store this engine was built over.
    ///
    /// # Panics
    ///
    /// Panics when `reader` fronts a different store instance.
    pub fn with_reader(mut self, reader: Arc<SegmentReader>) -> Self {
        assert!(
            Arc::ptr_eq(reader.store(), self.reader.store()),
            "SegmentReader fronts a different store than this engine"
        );
        self.reader = reader;
        self
    }

    /// Fetch and decode up to `prefetch` segments in parallel ahead of the
    /// operator cascade (clamped to ≥ 1; 1 disables prefetching).
    pub fn with_prefetch(mut self, prefetch: usize) -> Self {
        self.prefetch = prefetch.max(1);
        self
    }

    /// The configured prefetch lookahead.
    pub fn prefetch(&self) -> usize {
        self.prefetch
    }

    /// The virtual clock charged by query execution.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Execute a query over a contiguous range of segments of one stream,
    /// using the consumption/storage formats of the given configuration.
    ///
    /// Equivalent to [`execute_planned`](Self::execute_planned) with the
    /// default (disabled) [`PlanOptions`] — the exact scan.
    pub fn execute(
        &self,
        stream: &str,
        query: &QuerySpec,
        config: &Configuration,
        first_segment: u64,
        segment_count: u64,
    ) -> Result<QueryResult> {
        self.execute_planned(
            stream,
            query,
            config,
            first_segment,
            segment_count,
            &PlanOptions::default(),
        )
    }

    /// Pick the stage execution order. Unplanned queries (and single-stage
    /// cascades) run in declaration order. Planned queries pin the declared
    /// final stage last — its positives are the query's answer — and sort
    /// the earlier filters ascending by expected cost × selectivity on the
    /// operator library's cost model, so the cheapest, most selective
    /// filters shrink the active set before expensive ones run. The sort is
    /// stable: equal keys keep declaration order.
    fn plan_stage_order(
        &self,
        query: &QuerySpec,
        config: &Configuration,
        plan: &PlanOptions,
    ) -> Result<Vec<OperatorKind>> {
        if !plan.enabled || query.cascade.len() <= 1 {
            return Ok(query.cascade.clone());
        }
        let (last, head) = query.cascade.split_last().expect("cascade is non-empty"); // vstore-lint: allow(no-unwrap) — len <= 1 returned above
        let mut keyed: Vec<(f64, OperatorKind)> = Vec::with_capacity(head.len());
        for &op in head {
            let consumer = Consumer {
                op,
                accuracy: query.accuracy,
            };
            let sub = config.subscription(&consumer).ok_or_else(|| {
                VStoreError::InvalidState(format!(
                    "configuration has no subscription for {consumer}"
                ))
            })?;
            let cost = self
                .library
                .cost_model()
                .seconds_per_video_second(op, &sub.consumption.fidelity);
            keyed.push((cost * selectivity_prior(op), op));
        }
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut ordered: Vec<OperatorKind> = keyed.into_iter().map(|(_, op)| op).collect();
        ordered.push(*last);
        Ok(ordered)
    }

    /// The metadata skip pass: drop from `active` every segment whose
    /// sidecar proves its content too static for the cascade's
    /// change-driven stage to keep, **before** any prefetch — a skipped segment is never
    /// fetched, never decoded and never charged to any resource. Sidecar
    /// reads go straight to the store (never through the reader), so cache
    /// hit/miss statistics are unaffected. A missing or corrupt sidecar
    /// keeps the segment: the engine degrades to the full fetch + decode
    /// path rather than ever inventing a skip.
    fn apply_metadata_skip(
        &self,
        stream: &str,
        query: &QuerySpec,
        config: &Configuration,
        change_op: OperatorKind,
        plan: &PlanOptions,
        active: &mut BTreeSet<u64>,
    ) -> usize {
        // Only the change-driven filters can justify a skip from change
        // scores; a cascade without one keeps the exact scan.
        if !matches!(change_op, OperatorKind::Diff | OperatorKind::Motion) {
            return 0;
        }
        let consumer = Consumer {
            op: change_op,
            accuracy: query.accuracy,
        };
        let Some(sub) = config.subscription(&consumer) else {
            return 0; // the stage loop reports the missing subscription
        };
        let sampling = sub.consumption.fidelity.sampling;
        let store = self.reader.store();
        let mut skipped = 0usize;
        active.retain(|&segment| {
            let key = SegmentKey::new(stream, sub.storage, segment);
            let keep = match store.get_segment_meta(&key) {
                Ok(Some(bytes)) => match SegmentMeta::from_bytes(&bytes) {
                    Ok(meta) => meta.max_sampled_change(sampling) >= plan.skip_threshold,
                    Err(_) => true, // corrupt sidecar → full decode
                },
                _ => true, // missing sidecar (or backend error) → full decode
            };
            if !keep {
                skipped += 1;
            }
            keep
        });
        skipped
    }

    /// Execute a query with an explicit [`PlanOptions`]: optionally skip
    /// fetching segments whose ingest-time metadata says the first stage
    /// would discard them, and order cascade stages by cost × selectivity
    /// instead of declaration order. With planning disabled this is
    /// byte-identical to [`execute`](Self::execute).
    pub fn execute_planned(
        &self,
        stream: &str,
        query: &QuerySpec,
        config: &Configuration,
        first_segment: u64,
        segment_count: u64,
        plan: &PlanOptions,
    ) -> Result<QueryResult> {
        plan.validate()?;
        if stream.is_empty() {
            return Err(VStoreError::invalid_argument("query stream name is empty"));
        }
        if segment_count == 0 {
            return Err(VStoreError::invalid_argument("query covers zero segments"));
        }
        if first_segment.checked_add(segment_count).is_none() {
            return Err(VStoreError::invalid_argument(
                "query segment range overflows u64",
            ));
        }
        // The active set and per-stage buffers are sized from the segment
        // count; reject counts the platform cannot even address instead of
        // silently truncating them (or dying mid-allocation) further down.
        vstore_types::cast::usize_from_u64(segment_count, "query segment count")?;
        let ordered = self.plan_stage_order(query, config, plan)?;
        let mut active: BTreeSet<u64> = (first_segment..first_segment + segment_count).collect();
        let segments_skipped = if plan.enabled {
            // Key the skip off the earliest change-driven stage anywhere in
            // the plan: cascade stages conjoin, so a segment that stage
            // would discard contributes nothing no matter where the
            // planner scheduled it — skipping it up front is equivalent.
            match ordered
                .iter()
                .copied()
                .find(|op| matches!(op, OperatorKind::Diff | OperatorKind::Motion))
            {
                Some(op) => self.apply_metadata_skip(stream, query, config, op, plan, &mut active),
                None => 0,
            }
        } else {
            0
        };
        let mut stages = Vec::with_capacity(ordered.len());
        let mut total_seconds = 0.0f64;
        let mut bytes_read = ByteSize::ZERO;
        let mut positive_frames = Vec::new();
        // The caller's trace context (installed by the facade or a serve
        // worker); inert when tracing is off or the request unsampled.
        let trace = vstore_obs::current();

        for (stage_idx, &op) in ordered.iter().enumerate() {
            let _stage_span = trace.span_with("query.stage", || op.to_string());
            let consumer = Consumer {
                op,
                accuracy: query.accuracy,
            };
            let sub = config.subscription(&consumer).ok_or_else(|| {
                VStoreError::InvalidState(format!(
                    "configuration has no subscription for {consumer}"
                ))
            })?;
            let operator = self.library.instantiate(op);
            let mut report = StageReport {
                op,
                segments_processed: 0,
                segments_passed: 0,
                frames_consumed: 0,
                processing_seconds: 0.0,
                fallback_segments: 0,
                planned_selectivity: plan.enabled.then(|| selectivity_prior(op)),
            };
            let mut next_active = BTreeSet::new();
            let mut stage_positive_frames = Vec::new();
            // Bounded lookahead: fetch + decode + convert the next `prefetch`
            // segments in parallel, then run the operator and all accounting
            // on this thread in segment order.
            let stage_segments: Vec<u64> = active.iter().copied().collect();
            for window in stage_segments.chunks(self.prefetch) {
                for prefetched in self.prefetch_window(stream, config, sub, window)? {
                    let PrefetchedSegment {
                        segment,
                        decoded,
                        used_fallback,
                        read_bytes,
                        source: _,
                        frames,
                    } = prefetched;
                    bytes_read += read_bytes;
                    report.segments_processed += 1;
                    if used_fallback {
                        report.fallback_segments += 1;
                    }
                    report.frames_consumed += frames.len();
                    let output = operator.run(&frames);
                    // Charge modelled time: the stage runs at the lower of the
                    // consumption speed and the (possibly fallback-degraded)
                    // retrieval speed.
                    let retrieval = if used_fallback {
                        // Re-profile retrieval against the format actually used.
                        self.transcoder.retrieval_speed(
                            &decoded.storage_format,
                            0.3,
                            &sub.consumption,
                        )
                    } else {
                        sub.retrieval_speed
                    };
                    let effective = sub.consumption_speed.min(retrieval);
                    let segment_seconds = decoded.frame_count as f64
                        / (30.0 * decoded.storage_format.fidelity.sampling.fraction()).max(1e-9);
                    report.processing_seconds += segment_seconds / effective.factor().max(1e-9);
                    if output.positives() > 0 {
                        report.segments_passed += 1;
                        next_active.insert(segment);
                    }
                    if stage_idx + 1 == ordered.len() {
                        stage_positive_frames.extend(output.positive_indices());
                    }
                    let compute = self.library.compute_seconds(
                        op,
                        &sub.consumption.fidelity,
                        segment_seconds,
                    );
                    let kind = if op.runs_on_gpu() {
                        ResourceKind::GpuCompute
                    } else {
                        ResourceKind::OperatorCpu
                    };
                    self.clock.charge_background_seconds(kind, compute);
                }
            }
            total_seconds += report.processing_seconds;
            if stage_idx + 1 == ordered.len() {
                positive_frames = stage_positive_frames;
            }
            stages.push(report);
            active = next_active;
            if active.is_empty() && stage_idx + 1 < ordered.len() {
                // Nothing left for later stages; record them as idle.
                for &op in &ordered[stage_idx + 1..] {
                    stages.push(StageReport {
                        op,
                        segments_processed: 0,
                        segments_passed: 0,
                        frames_consumed: 0,
                        processing_seconds: 0.0,
                        fallback_segments: 0,
                        planned_selectivity: plan.enabled.then(|| selectivity_prior(op)),
                    });
                }
                break;
            }
        }

        let video = VideoSeconds(segment_count as f64 * 8.0);
        self.clock.add_video_processed(video);
        self.clock.advance(total_seconds);
        Ok(QueryResult {
            query: query.clone(),
            video,
            speed: Speed::from_durations(video.seconds(), total_seconds),
            positive_frames,
            stages,
            bytes_read,
            segments_skipped,
        })
    }

    /// The prefetch/decode stage: fetch one window of segments through the
    /// [`SegmentReader`], decode the sampled frames (skipped on a tier-2
    /// cache hit) and convert them to the consumption format, all in
    /// parallel. Segments not ingested at all are dropped; segment order is
    /// preserved, so downstream accounting is identical to the sequential
    /// path.
    ///
    /// Read charging happens here and only here, on the calling thread in
    /// segment order: every fetched segment is charged **exactly once** —
    /// to [`ResourceKind::DiskRead`] when the store served it, to
    /// [`ResourceKind::MemRead`] when a cache tier did — on the success and
    /// the error path alike. The caller never charges reads, so a window
    /// re-entered after an operator error cannot double-charge segments the
    /// failing attempt already paid for.
    fn prefetch_window(
        &self,
        stream: &str,
        config: &Configuration,
        sub: &vstore_types::Subscription,
        window: &[u64],
    ) -> Result<Vec<PrefetchedSegment>> {
        // Captured explicitly: the pool threads below have their own TLS,
        // so the caller's installed trace context does not propagate.
        let trace = vstore_obs::current();
        let fetched = scoped_map(
            window.to_vec(),
            self.prefetch,
            |_, segment| -> Result<Option<PrefetchedSegment>> {
                let fetch_started = Instant::now();
                let (read, used_fallback) = match self.fetch_decoded(
                    stream,
                    config,
                    sub.storage,
                    segment,
                    &sub.consumption,
                )? {
                    Some(found) => found,
                    None => return Ok(None), // segment not ingested at all
                };
                let DecodedRead {
                    segment: decoded,
                    source,
                } = read;
                trace.record_since(read_span_name(source), fetch_started);
                let frames = self
                    .transcoder
                    .convert_for_consumption(&decoded.frames, &sub.consumption)?;
                Ok(Some(PrefetchedSegment {
                    segment,
                    read_bytes: ByteSize(decoded.raw_len),
                    decoded,
                    used_fallback,
                    source,
                    frames,
                }))
            },
        );
        let mut out = Vec::with_capacity(window.len());
        let mut first_error = None;
        for item in fetched {
            match item {
                Ok(Some(prefetched)) => out.push(prefetched),
                Ok(None) => {}
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        // Charge every segment this window actually fetched, exactly once,
        // whether or not the window as a whole succeeds — the ledger always
        // reflects real traffic, like the ingest side's
        // charge-everything-persisted policy. (With prefetch = 1 a failing
        // window is one segment and nothing was fetched, matching the
        // sequential path.) A cold-tier fetch is charged to `ColdRead`, not
        // `DiskRead`: it is a different (slower, cheaper) device, and the
        // ledger is how experiments see the tiering trade-off.
        for prefetched in &out {
            let kind = match prefetched.source {
                ReadSource::DecodedCache | ReadSource::RawCache => ResourceKind::MemRead,
                ReadSource::Cold => ResourceKind::ColdRead,
                ReadSource::Disk => ResourceKind::DiskRead,
            };
            self.clock.charge_bytes(kind, prefetched.read_bytes);
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Fetch one segment decoded at the subscription's sampling rate, in
    /// the subscribed format, falling back to a richer stored format when
    /// it is missing (eroded). Each candidate key goes through the reader's
    /// two cache tiers before touching the store.
    fn fetch_decoded(
        &self,
        stream: &str,
        config: &Configuration,
        preferred: vstore_types::FormatId,
        segment: u64,
        consumption: &vstore_types::ConsumptionFormat,
    ) -> Result<Option<(DecodedRead, bool)>> {
        let sampling = consumption.fidelity.sampling;
        let key = SegmentKey::new(stream, preferred, segment);
        if let Some(read) = self.reader.get_decoded(&key, sampling)? {
            return Ok(Some((read, false)));
        }
        // Fallback: any stored format with satisfiable fidelity, preferring
        // the cheapest (fewest bytes would be nice, but richer-or-equal and
        // present is the requirement; iterate in id order so the golden
        // format is the last resort only if numbered formats fail).
        let mut candidates: Vec<_> = config
            .storage_formats
            .iter()
            .filter(|(id, sf)| **id != preferred && sf.satisfies(consumption))
            .collect();
        candidates.sort_by_key(|(id, _)| std::cmp::Reverse(id.0));
        for (id, _) in candidates {
            let key = SegmentKey::new(stream, *id, segment);
            if let Some(read) = self.reader.get_decoded(&key, sampling)? {
                return Ok(Some((read, true)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vstore_core::{Alternative, ConfigurationEngine, EngineOptions};
    use vstore_datasets::{Dataset, VideoSource};
    use vstore_ingest::IngestionPipeline;
    use vstore_ops::OperatorLibrary;
    use vstore_profiler::{Profiler, ProfilerConfig};
    use vstore_sim::CodingCostModel;
    use vstore_types::FidelitySpace;

    struct Fixture {
        store: Arc<SegmentStore>,
        config: Configuration,
        one_to_n: Configuration,
        engine: QueryEngine,
    }

    fn fixture(consumer_accuracy: f64) -> Fixture {
        let profiler = Arc::new(Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        ));
        let options = EngineOptions {
            fidelity_space: FidelitySpace::reduced(),
            ..EngineOptions::default()
        };
        let engine = ConfigurationEngine::new(Arc::clone(&profiler), options);
        let query = QuerySpec::query_a(consumer_accuracy);
        let consumers = query.consumers();
        let config = engine.derive(&consumers).unwrap();
        let one_to_n = engine
            .derive_alternative(&consumers, Alternative::OneToN)
            .unwrap();

        let store = Arc::new(SegmentStore::open_temp("query-engine").unwrap());
        let ingest = IngestionPipeline::new(
            Arc::clone(&store),
            Transcoder::default(),
            VirtualClock::new(),
        );
        let source = VideoSource::new(Dataset::Jackson);
        // Ingest into the union of both configurations' formats by ingesting
        // twice (ids overlap only for the golden format, which is identical).
        ingest.ingest_segments(&source, 0, 2, &config).unwrap();
        ingest.ingest_segments(&source, 0, 2, &one_to_n).unwrap();

        let engine = QueryEngine::new(
            Arc::clone(&store),
            OperatorLibrary::paper_testbed(),
            Transcoder::default(),
            VirtualClock::new(),
        );
        Fixture {
            store,
            config,
            one_to_n,
            engine,
        }
    }

    #[test]
    fn query_a_runs_end_to_end_and_reports_speed() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_a(0.8);
        let result = fx
            .engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap();
        assert_eq!(result.stages.len(), 3);
        assert_eq!(result.stages[0].segments_processed, 2);
        assert!((result.video.seconds() - 16.0).abs() < 1e-9);
        assert!(result.speed.factor() > 1.0, "query speed {}", result.speed);
        assert!(result.bytes_read.bytes() > 0);
        // Later stages never process more segments than earlier ones.
        for w in result.stages.windows(2) {
            assert!(w[1].segments_processed <= w[0].segments_passed);
        }
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    #[test]
    fn vstore_configuration_is_faster_than_one_to_n() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_a(0.8);
        let vstore = fx
            .engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap();
        let baseline = fx
            .engine
            .execute("jackson", &query, &fx.one_to_n, 0, 2)
            .unwrap();
        assert!(
            vstore.speed.factor() > baseline.speed.factor(),
            "VStore {} should beat 1→N {}",
            vstore.speed,
            baseline.speed
        );
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    #[test]
    fn missing_subscription_is_an_error() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_b(0.8); // configuration was built for query A
        let err = fx
            .engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidState(_)));
        assert!(fx
            .engine
            .execute("jackson", &QuerySpec::query_a(0.8), &fx.config, 0, 0)
            .is_err());
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    /// Regression (DiskRead double-charging): a window that fails mid-fetch
    /// charges each segment it actually fetched exactly once, and
    /// re-entering the window after the error charges the re-fetches once
    /// more — never the failed attempt's segments twice.
    #[test]
    fn failed_and_reentered_windows_charge_each_fetched_segment_exactly_once() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_a(0.8);
        let consumer = Consumer {
            op: query.cascade[0],
            accuracy: query.accuracy,
        };
        let sub = fx.config.subscription(&consumer).unwrap();
        // Corrupt segment 1 of the stage-1 subscribed format: the fetch
        // reads its bytes but container parsing fails.
        let bad_key = SegmentKey::new("jackson", sub.storage, 1);
        fx.store.put(&bad_key, b"corrupted-not-a-segment").unwrap();
        let good_len = fx
            .store
            .get(&SegmentKey::new("jackson", sub.storage, 0))
            .unwrap()
            .unwrap()
            .len() as u64;

        // Fresh clock, prefetch 2: both segments share one window.
        let engine = QueryEngine::new(
            Arc::clone(&fx.store),
            OperatorLibrary::paper_testbed(),
            Transcoder::default(),
            VirtualClock::new(),
        )
        .with_prefetch(2);
        let err = engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap_err();
        assert!(matches!(err, VStoreError::Corruption(_)), "{err}");
        let usage = engine.clock().usage();
        assert_eq!(
            usage.bytes(ResourceKind::DiskRead).bytes(),
            good_len,
            "the good segment is charged exactly once, the corrupt one never"
        );
        // Re-enter the same window: the retry's real re-read is charged
        // once more — exactly double, not more.
        let _ = engine
            .execute("jackson", &query, &fx.config, 0, 2)
            .unwrap_err();
        assert_eq!(
            engine.clock().usage().bytes(ResourceKind::DiskRead).bytes(),
            2 * good_len
        );
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    /// With the two-tier cache enabled, repeated queries return identical
    /// results while their reads move from DiskRead to MemRead.
    #[test]
    fn cache_hits_charge_memory_reads_and_leave_results_identical() {
        let fx = fixture(0.8);
        let reader = Arc::new(SegmentReader::new(Arc::clone(&fx.store), 64 << 20, 256));
        let engine = QueryEngine::new(
            Arc::clone(&fx.store),
            OperatorLibrary::paper_testbed(),
            Transcoder::default(),
            VirtualClock::new(),
        )
        .with_prefetch(2)
        .with_reader(Arc::clone(&reader));
        let query = QuerySpec::query_a(0.8);

        let first = engine.execute("jackson", &query, &fx.config, 0, 2).unwrap();
        let disk_after_first = engine.clock().usage().bytes(ResourceKind::DiskRead);
        assert!(disk_after_first.bytes() > 0);

        let second = engine.execute("jackson", &query, &fx.config, 0, 2).unwrap();
        assert_eq!(first, second, "cache must never change query results");
        let usage = engine.clock().usage();
        assert_eq!(
            usage.bytes(ResourceKind::DiskRead),
            disk_after_first,
            "a fully warm query reads nothing from disk"
        );
        assert!(usage.bytes(ResourceKind::MemRead).bytes() > 0);
        let stats = reader.cache_stats();
        assert!(stats.decoded_hits > 0, "stats: {stats:?}");
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }

    #[test]
    fn queries_over_missing_streams_return_empty_results() {
        let fx = fixture(0.8);
        let query = QuerySpec::query_a(0.8);
        let result = fx
            .engine
            .execute("nonexistent", &query, &fx.config, 0, 2)
            .unwrap();
        assert_eq!(result.stages[0].segments_processed, 0);
        assert!(result.positive_frames.is_empty());
        std::fs::remove_dir_all(fx.store.dir()).ok();
    }
}
