//! Query cascades (Figure 2 of the paper).

use serde::{Deserialize, Serialize};
use vstore_types::{AccuracyLevel, Consumer, OperatorKind};

/// The operator cascade of query A (car detection): Diff filters out similar
/// frames, the specialised NN rapidly detects part of the cars, the full NN
/// analyses the remaining frames.
pub const STAGE_A: [OperatorKind; 3] = [
    OperatorKind::Diff,
    OperatorKind::SpecializedNN,
    OperatorKind::FullNN,
];

/// The operator cascade of query B (licence-plate recognition): Motion
/// filters frames with little motion, License spots plate regions, OCR reads
/// the characters.
pub const STAGE_B: [OperatorKind; 3] = [
    OperatorKind::Motion,
    OperatorKind::License,
    OperatorKind::Ocr,
];

/// A query: an operator cascade run at one target accuracy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Human-readable name ("A", "B", …).
    pub name: String,
    /// The cascade, from the cheap early operator to the expensive late one.
    pub cascade: Vec<OperatorKind>,
    /// The target accuracy every operator of the cascade runs at.
    pub accuracy: AccuracyLevel,
}

impl QuerySpec {
    /// Query A at a target accuracy.
    pub fn query_a(accuracy: f64) -> Self {
        QuerySpec {
            name: "A".into(),
            cascade: STAGE_A.to_vec(),
            accuracy: AccuracyLevel::new(accuracy),
        }
    }

    /// Query B at a target accuracy.
    pub fn query_b(accuracy: f64) -> Self {
        QuerySpec {
            name: "B".into(),
            cascade: STAGE_B.to_vec(),
            accuracy: AccuracyLevel::new(accuracy),
        }
    }

    /// A custom cascade.
    pub fn custom(name: impl Into<String>, cascade: Vec<OperatorKind>, accuracy: f64) -> Self {
        QuerySpec {
            name: name.into(),
            cascade,
            accuracy: AccuracyLevel::new(accuracy),
        }
    }

    /// The consumers this query needs configured: one per cascade stage at
    /// the query's accuracy.
    pub fn consumers(&self) -> Vec<Consumer> {
        self.cascade
            .iter()
            .map(|&op| Consumer {
                op,
                accuracy: self.accuracy,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_queries_have_three_stages() {
        let a = QuerySpec::query_a(0.9);
        let b = QuerySpec::query_b(0.8);
        assert_eq!(a.cascade.len(), 3);
        assert_eq!(b.cascade.len(), 3);
        assert_eq!(a.cascade[0], OperatorKind::Diff);
        assert_eq!(b.cascade[2], OperatorKind::Ocr);
        assert_eq!(a.consumers().len(), 3);
        assert!(a
            .consumers()
            .iter()
            .all(|c| (c.accuracy.value() - 0.9).abs() < 1e-9));
    }

    #[test]
    fn custom_cascades_are_supported() {
        let q = QuerySpec::custom(
            "colour-track",
            vec![OperatorKind::Color, OperatorKind::OpticalFlow],
            0.8,
        );
        assert_eq!(q.consumers().len(), 2);
        assert_eq!(q.name, "colour-track");
    }
}
