//! # vstore-query
//!
//! The query engine ported onto VStore (§5): operator cascades executed over
//! video segments retrieved from the segment store, decoded, converted to
//! each operator's consumption format, and consumed.
//!
//! The two end-to-end queries of the paper are provided:
//!
//! * **Query A** (NoScope-style car detection): Diff → S-NN → NN;
//! * **Query B** (OpenALPR-style plate recognition): Motion → License → OCR.
//!
//! Early operators scan every segment of the queried timespan; later
//! operators only touch the segments their predecessor flagged. Per-stage
//! time is charged as `video processed ÷ min(retrieval speed, consumption
//! speed)` on the calibrated models, which is how the paper's ×realtime
//! query speeds are measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade;
pub mod engine;
pub mod planner;

pub use cascade::{QuerySpec, STAGE_A, STAGE_B};
pub use engine::{QueryEngine, QueryResult, StageReport};
pub use planner::{PlanOptions, DEFAULT_SKIP_THRESHOLD};
